"""Distributed multi-host execution backend: coordinator + pull-based workers.

The paper's headline experiments use up to 256 cores — more than one host
exposes — so the engine needs to fan a campaign out across machines without
giving up its hard invariant (a given ``base_seed`` yields bit-identical
observations on every backend, at any worker count, no matter which host ran
which unit).  :class:`DistributedBackend` keeps the invariant the same way
the single-host backends do: seeds are pre-derived by the coordinator
(:func:`repro.engine.seeding.spawn_seeds`) before any unit is issued, units
are blocks of *contiguous* payloads, and results are reassembled by payload
position, so scheduling order is invisible to consumers.

Two transports share one protocol (:data:`repro.engine.tasks.PROTOCOL_VERSION`):

* **Socket** — the coordinator listens on ``host:port``; workers connect and
  pull units over line-delimited JSON messages (one JSON object per line,
  UTF-8).  Pickled payloads travel base64-encoded inside the JSON.  The
  message flow::

      worker -> {"type": "hello", "protocol": 2, "worker": "<name>", "token": "..."}
      coord  -> {"type": "welcome", "protocol": 2}        (or "error" + close)
      worker -> {"type": "request"}
      coord  -> {"type": "unit", "unit_id": ..., "payload": <b64 pickle>}
                | {"type": "idle"}                        (retry later)
      worker -> {"type": "heartbeat"}                     (while executing; no reply)
      worker -> {"type": "result", "unit_id": ..., "payload": <b64 pickle>}
                | {"type": "failed", "unit_id": ..., "reason": "..."}

  A coordinator constructed with ``auth_token`` refuses the handshake of any
  worker whose hello does not carry the same token (constant-time compare),
  so a fleet exposed on a shared network only accepts its own workers.
  While a unit executes, the worker's heartbeat thread refreshes the
  coordinator-side lease of every unit it holds: slow-but-alive workers are
  never speculatively re-issued, while a wedged (or killed) worker's units
  go stale within ``lease_seconds`` and are re-issued to the rest of the
  fleet — result dedup on ``unit_id`` keeps re-issues idempotent either way.

  A worker that dies mid-unit drops its connection; the coordinator requeues
  every unit checked out on that connection, and speculatively re-issues
  units outstanding past ``lease_seconds`` to idle workers (straggler
  re-execution).  Results are deduplicated on ``unit_id``, so a unit that
  was re-issued and completed twice is counted once.  A payload that raises
  is reported as ``failed`` (the worker survives), retried up to
  ``max_unit_failures`` times, then fails the batch loudly.  Workers exit
  when the coordinator closes the connection (end of campaign) and
  idle-poll between batches of the same campaign.

* **Job directory** — for queue/HPC settings where sockets are awkward, the
  coordinator drops pickled unit files into a shared directory and polls for
  result files; workers claim units by exclusive creation of a claim file,
  write results atomically (``os.replace``), and exit when the coordinator
  writes a ``STOP`` marker (a stale marker from a previous campaign in a
  reused directory is ignored until the worker's connect grace expires).
  Workers heartbeat their claim's mtime on a timer while executing; claims
  gone stale for ``lease_seconds`` belong to dead workers and are deleted
  by the coordinator, re-issuing the unit.  Crashing payloads leave
  ``errors/`` files that bound retries exactly like the socket path.
  First result file wins, which is an idempotent dedup because unit results
  are deterministic.

Both transports ship pickles, so — exactly like :mod:`multiprocessing` —
they assume a trusted cluster: never expose a coordinator to an untrusted
network.

Workers run units through the existing per-host backends (``serial``,
``thread`` or ``process``) and, when given a shared ``cache_dir``, read and
write a content-addressed unit-result cache under ``<cache_dir>/units/`` so
repeated or re-issued units are free across the fleet.
"""

from __future__ import annotations

import base64
import collections
import dataclasses
import hmac
import json
import os
import pickle
import queue
import re
import socket
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

from repro.engine.backends import BatchExecutor, SerialBackend
from repro.engine.tasks import PROTOCOL_VERSION, UnitResult, WorkUnit, shard_units

__all__ = [
    "DistributedBackend",
    "ProtocolError",
    "UnitLedger",
    "WorkerStats",
    "execute_unit",
    "run_worker",
]


class ProtocolError(RuntimeError):
    """Coordinator and worker disagree about the wire protocol."""


# ----------------------------------------------------------------------
# Wire format: one JSON object per line; pickles travel base64-encoded.
# ----------------------------------------------------------------------
def _encode(obj: Any) -> str:
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def _decode(text: str) -> Any:
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def _send(stream, message: dict) -> None:
    stream.write((json.dumps(message) + "\n").encode("utf-8"))
    stream.flush()


def _recv(stream) -> dict | None:
    line = stream.readline()
    if not line:
        return None
    return json.loads(line.decode("utf-8"))


def _parse_address(address: str) -> tuple[str, int]:
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"coordinator address must be HOST:PORT, got {address!r}")
    return host, int(port)


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write via a uniquely-named sibling + ``os.replace``.

    Readers polling ``path`` (job-dir workers/coordinators, cache probes)
    never observe a partial file, and the uuid component keeps temp names
    collision-free across hosts sharing a filesystem (PIDs alone collide).
    """
    tmp = path.with_suffix(f".tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}")
    tmp.write_bytes(data)
    os.replace(tmp, path)


def _filename_safe(name: str) -> str:
    """Collapse a worker name to filesystem-safe characters.

    Worker names are user-supplied (``--name team/alpha``) or default to
    ``host:pid``; both can contain separators that must not leak into file
    paths used for failure accounting.
    """
    return re.sub(r"[^A-Za-z0-9._-]", "_", name) or "worker"


# ----------------------------------------------------------------------
# Unit bookkeeping shared by both transports
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class _UnitFailure:
    """Terminal failure marker a ledger emits after exhausting a unit's retries."""

    unit_id: str
    reason: str


class UnitLedger:
    """Thread-safe pending/outstanding/completed bookkeeping for one batch.

    The ledger is the coordinator's single source of truth: units are checked
    out to an owner, requeued when the owner dies, and completed exactly once
    — a second result for the same ``unit_id`` (re-issued unit finishing
    twice, duplicate submission) is dropped, which is what makes worker
    failure handling idempotent.

    With ``lease_seconds`` set, a drained ledger speculatively re-issues the
    longest-outstanding unit to an idle worker (classic straggler
    re-execution): a hung-but-still-connected worker then only costs one
    redundant execution, which the dedup absorbs.  Units whose execution
    *raises* are retried up to ``max_failures`` times and then surfaced as a
    :class:`_UnitFailure` on the results queue, so a deterministic crash
    fails the batch loudly instead of crash-looping the fleet forever.
    """

    def __init__(
        self,
        units: Sequence[WorkUnit],
        *,
        lease_seconds: float | None = None,
        max_failures: int = 3,
    ) -> None:
        self._units = {unit.unit_id: unit for unit in units}
        if len(self._units) != len(units):
            raise ValueError("unit ids must be unique within a batch")
        self._pending = collections.deque(units)
        self._outstanding: dict[str, set[str]] = {}  # unit_id -> live owners
        self._issued_at: dict[str, float] = {}
        self._failures: dict[str, int] = {}
        self._completed: set[str] = set()
        self._cancelled = False
        self._lock = threading.Lock()
        self.lease_seconds = lease_seconds
        self.max_failures = max_failures
        #: Completed unit results (and terminal ``_UnitFailure`` markers),
        #: in completion order (consumer side).
        self.results: queue.Queue = queue.Queue()
        #: Units handed out again after their owner died or went stale.
        self.reissues = 0

    @property
    def n_units(self) -> int:
        return len(self._units)

    @property
    def done(self) -> bool:
        with self._lock:
            return len(self._completed) == len(self._units)

    def checkout(self, owner: str) -> WorkUnit | None:
        """Hand the next pending unit to ``owner`` (``None`` when drained).

        When the pending queue is empty but units are still outstanding past
        their lease, the oldest such unit is re-issued to ``owner`` as well —
        if the original worker is merely slow, the duplicate result is
        deduplicated; if it hung, the batch still completes.
        """
        with self._lock:
            if self._cancelled:
                return None
            if self._pending:
                unit = self._pending.popleft()
                self._outstanding[unit.unit_id] = {owner}
                self._issued_at[unit.unit_id] = time.monotonic()
                return unit
            if self.lease_seconds is None or not self._outstanding:
                return None
            stale_id = min(self._outstanding, key=lambda uid: self._issued_at[uid])
            if time.monotonic() - self._issued_at[stale_id] < self.lease_seconds:
                return None
            self._outstanding[stale_id].add(owner)
            self._issued_at[stale_id] = time.monotonic()  # throttle re-issues
            self.reissues += 1
            return self._units[stale_id]

    def requeue(self, unit_id: str, owner: str | None = None) -> bool:
        """Return a checked-out unit to the pending queue (its owner died).

        With ``owner`` given, only that owner's hold is released; the unit is
        requeued when no other worker still has it in flight.  Without
        ``owner`` the unit is requeued unconditionally.
        """
        with self._lock:
            if unit_id in self._completed or unit_id not in self._outstanding:
                return False
            if owner is not None:
                owners = self._outstanding[unit_id]
                owners.discard(owner)
                if owners:
                    return False  # a speculative copy is still running
            self._outstanding.pop(unit_id)
            self._issued_at.pop(unit_id, None)
            self._pending.append(self._units[unit_id])
            self.reissues += 1
            return True

    def release_owner(self, owner: str) -> int:
        """Requeue every unit currently checked out (only) to ``owner``."""
        with self._lock:
            held = [uid for uid, owners in self._outstanding.items() if owner in owners]
        return sum(self.requeue(uid, owner) for uid in held)

    def touch(self, owner: str) -> int:
        """Refresh the lease of every unit ``owner`` holds (worker heartbeat).

        Returns how many outstanding units were refreshed.  A heartbeating
        worker on a slow unit therefore never trips the speculative
        re-issue, no matter how heavy-tailed the run.
        """
        now = time.monotonic()
        with self._lock:
            held = [uid for uid, owners in self._outstanding.items() if owner in owners]
            for uid in held:
                self._issued_at[uid] = now
        return len(held)

    def complete(self, result: UnitResult) -> bool:
        """Record a finished unit; ``False`` for duplicates or unknown ids."""
        with self._lock:
            unit_id = result.unit_id
            if self._cancelled or unit_id not in self._units or unit_id in self._completed:
                return False
            self._completed.add(unit_id)
            self._outstanding.pop(unit_id, None)
            self._issued_at.pop(unit_id, None)
        self.results.put(result)
        return True

    def fail(self, unit_id: str, reason: str, owner: str | None = None) -> bool:
        """Record a failed execution attempt; retry or give up.

        Returns ``True`` while the unit will be retried; on the
        ``max_failures``-th failure the unit is marked completed and a
        :class:`_UnitFailure` is emitted so the consumer can raise.
        """
        with self._lock:
            if self._cancelled or unit_id not in self._units or unit_id in self._completed:
                return False
            count = self._failures[unit_id] = self._failures.get(unit_id, 0) + 1
            if count >= self.max_failures:
                self._completed.add(unit_id)
                self._outstanding.pop(unit_id, None)
                self._issued_at.pop(unit_id, None)
                give_up = True
            else:
                give_up = False
        if give_up:
            self.results.put(_UnitFailure(unit_id=unit_id, reason=reason))
            return False
        self.requeue(unit_id, owner)
        return True

    def cancel(self) -> None:
        """Stop issuing and accepting units (batch abandoned early)."""
        with self._lock:
            self._cancelled = True
            self._pending.clear()
            self._outstanding.clear()
            self._issued_at.clear()


# ----------------------------------------------------------------------
# Worker-side execution (deterministic in-unit ordering + shared cache)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class _PositionedCall:
    """Payload wrapper carrying its in-unit position through any backend."""

    fn: Callable[[Any], Any]
    position: int
    payload: Any


def _execute_positioned(call: _PositionedCall) -> tuple[int, Any]:
    return call.position, call.fn(call.payload)


def execute_unit(unit: WorkUnit, executor: BatchExecutor | None = None) -> UnitResult:
    """Run one unit on a local backend, returning values in payload order.

    The local backend may complete payloads out of order; values are
    reassembled by position so a unit's result is byte-identical no matter
    which backend (or host) executed it.
    """
    executor = executor or SerialBackend()
    calls = [
        _PositionedCall(unit.fn, position, payload)
        for position, payload in enumerate(unit.payloads)
    ]
    values: list[Any] = [None] * len(calls)
    for position, value in executor.imap_unordered(_execute_positioned, calls):
        values[position] = value
    return UnitResult(unit_id=unit.unit_id, values=tuple(values))


def _unit_cache_path(cache_dir: str | Path, unit: WorkUnit) -> Path:
    return Path(cache_dir) / "units" / f"unit-{unit.fingerprint()}.pkl"


def _execute_unit_cached(
    unit: WorkUnit,
    executor: BatchExecutor | None,
    cache_dir: str | Path | None,
    stats: "WorkerStats",
) -> UnitResult:
    """Execute a unit, consulting the shared unit-result cache when present."""
    path = _unit_cache_path(cache_dir, unit) if cache_dir is not None else None
    if path is not None and path.exists():
        values = pickle.loads(path.read_bytes())
        stats.cache_hits += 1
        result = UnitResult(unit_id=unit.unit_id, values=tuple(values))
    else:
        result = execute_unit(unit, executor)
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            _atomic_write_bytes(path, pickle.dumps(list(result.values)))
    stats.units_completed += 1
    stats.runs_completed += len(result.values)
    return result


# ----------------------------------------------------------------------
# Socket transport: coordinator server
# ----------------------------------------------------------------------
class _CoordinatorServer:
    """Listening socket serving units to pull-based workers.

    The server outlives individual batches: one campaign runs several
    batches through the same backend instance, and workers stay connected
    (idle-polling) in between.  ``set_ledger`` installs the active batch.
    """

    def __init__(self, host: str, port: int, auth_token: str | None = None) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen()
        self._sock.settimeout(0.2)  # lets the accept loop notice close()
        self._auth_token = auth_token
        self.host, self.port = self._sock.getsockname()[:2]
        self._ledger: UnitLedger | None = None
        self._ledger_lock = threading.Lock()
        self._closed = threading.Event()
        self._connections: set[socket.socket] = set()
        self._connections_lock = threading.Lock()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-coordinator-accept", daemon=True
        )
        self._accept_thread.start()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def set_ledger(self, ledger: UnitLedger | None) -> None:
        with self._ledger_lock:
            if ledger is not None and self._ledger is not None:
                # One ledger slot: silently evicting an in-flight batch would
                # leave its consumer blocked forever on an empty results queue.
                raise RuntimeError(
                    "a DistributedBackend serves one batch at a time; run "
                    "concurrent batches on separate backend instances"
                )
            self._ledger = ledger

    def _current_ledger(self) -> UnitLedger | None:
        with self._ledger_lock:
            return self._ledger

    def _accept_loop(self) -> None:
        counter = 0
        while not self._closed.is_set():
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            counter += 1
            with self._connections_lock:
                if self._closed.is_set():
                    conn.close()
                    continue
                self._connections.add(conn)
            threading.Thread(
                target=self._handle_client,
                args=(conn, f"conn-{counter}"),
                name=f"repro-coordinator-{counter}",
                daemon=True,
            ).start()

    def _handle_client(self, conn: socket.socket, owner: str) -> None:
        checked_out: dict[str, UnitLedger] = {}
        stream = conn.makefile("rwb")
        try:
            hello = _recv(stream)
            if hello is None or hello.get("type") != "hello":
                _send(stream, {"type": "error", "reason": "expected a hello message"})
                return
            if hello.get("protocol") != PROTOCOL_VERSION:
                _send(
                    stream,
                    {
                        "type": "error",
                        "protocol": PROTOCOL_VERSION,
                        "reason": (
                            f"protocol version mismatch: coordinator speaks "
                            f"{PROTOCOL_VERSION}, worker announced {hello.get('protocol')!r}"
                        ),
                    },
                )
                return
            if self._auth_token is not None and not hmac.compare_digest(
                str(hello.get("token") or ""), self._auth_token
            ):
                # Constant-time compare; the reason deliberately does not
                # reveal whether the token was missing or merely wrong.
                _send(
                    stream,
                    {
                        "type": "error",
                        "reason": "authentication failed: bad or missing worker token",
                    },
                )
                return
            _send(stream, {"type": "welcome", "protocol": PROTOCOL_VERSION})
            while not self._closed.is_set():
                message = _recv(stream)
                if message is None:
                    break
                if message["type"] == "heartbeat":
                    # Refresh the lease of every unit this connection holds;
                    # heartbeats are fire-and-forget (no reply), so they can
                    # interleave with the request/response flow freely.
                    ledger = self._current_ledger()
                    if ledger is not None:
                        ledger.touch(owner)
                elif message["type"] == "request":
                    ledger = self._current_ledger()
                    unit = ledger.checkout(owner) if ledger is not None else None
                    if unit is None:
                        _send(stream, {"type": "idle"})
                    else:
                        checked_out[unit.unit_id] = ledger
                        _send(
                            stream,
                            {
                                "type": "unit",
                                "unit_id": unit.unit_id,
                                "payload": _encode(unit),
                            },
                        )
                elif message["type"] == "result":
                    result = _decode(message["payload"])
                    ledger = checked_out.pop(result.unit_id, None) or self._current_ledger()
                    if ledger is not None:
                        ledger.complete(result)  # dedups on unit_id
                elif message["type"] == "failed":
                    unit_id = message["unit_id"]
                    ledger = checked_out.pop(unit_id, None) or self._current_ledger()
                    if ledger is not None:
                        # Retry on another worker; after max_failures the
                        # ledger surfaces the failure to the batch consumer.
                        ledger.fail(unit_id, message.get("reason", "unknown"), owner)
                else:
                    _send(
                        stream,
                        {"type": "error", "reason": f"unknown message type {message['type']!r}"},
                    )
                    break
        except (OSError, ValueError, EOFError, json.JSONDecodeError, KeyError):
            pass  # broken client: drop the connection, requeue its units below
        finally:
            # A dead worker's outstanding units go back to the queue so the
            # rest of the fleet absorbs them (work stealing on failure).
            for unit_id, ledger in checked_out.items():
                ledger.requeue(unit_id, owner)
            try:
                stream.close()
            except OSError:
                pass
            conn.close()
            with self._connections_lock:
                self._connections.discard(conn)

    def close(self) -> None:
        self._closed.set()
        self._sock.close()
        with self._connections_lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        self._accept_thread.join(timeout=2.0)


# ----------------------------------------------------------------------
# The backend
# ----------------------------------------------------------------------
class DistributedBackend(BatchExecutor):
    """Run batches on external worker processes, possibly on other hosts.

    Exactly one transport must be configured:

    ``coordinator="HOST:PORT"``
        Bind a coordinator socket at that address (``HOST:0`` picks a free
        port, see :meth:`start`); workers connect with
        ``repro-lasvegas worker --connect HOST:PORT``.
    ``job_dir="DIR"``
        Use a shared filesystem directory instead of sockets; workers run
        ``repro-lasvegas worker --job-dir DIR``.

    The backend is an ordinary :class:`BatchExecutor`: ``collect_batch`` and
    ``run_race`` route through it unchanged, and the engine invariant holds
    because seeds are derived before sharding and results are reassembled by
    payload index.  Worker count is whatever connects — pass ``workers`` as
    ``None`` (anything else is rejected, there is no local pool to size).
    One instance serves its batches sequentially (campaigns do exactly
    that); overlapping ``imap_unordered`` calls on the same instance raise
    — use separate instances for concurrent batches.
    """

    name = "distributed"

    def __init__(
        self,
        *,
        coordinator: str | None = None,
        job_dir: str | Path | None = None,
        workers: int | None = None,
        unit_size: int = 4,
        poll_interval: float = 0.05,
        lease_seconds: float = 30.0,
        batch_timeout: float | None = None,
        max_unit_failures: int = 3,
        auth_token: str | None = None,
    ) -> None:
        if workers is not None:
            raise ValueError(
                "the distributed backend has no local pool to size; worker count "
                "is however many 'repro-lasvegas worker' processes connect"
            )
        if (coordinator is None) == (job_dir is None):
            raise ValueError(
                "the distributed backend needs exactly one transport: "
                "coordinator='HOST:PORT' (socket) or job_dir='DIR' (filesystem) "
                "— on the CLI, pass --coordinator or --job-dir"
            )
        if unit_size < 1:
            raise ValueError(f"unit_size must be >= 1, got {unit_size}")
        if auth_token is not None and coordinator is None:
            raise ValueError(
                "auth_token applies to the socket transport only; the job "
                "directory's trust boundary is its filesystem permissions"
            )
        self.coordinator = coordinator
        self.job_dir = Path(job_dir) if job_dir is not None else None
        self.auth_token = auth_token
        self.unit_size = unit_size
        self.poll_interval = poll_interval
        self.lease_seconds = lease_seconds
        self.batch_timeout = batch_timeout
        self.max_unit_failures = max_unit_failures
        self._server: _CoordinatorServer | None = None
        self._batch_counter = 0
        self._closed = False
        #: Job-directory claims re-issued after lease expiry (observability;
        #: the socket transport tracks re-issues on each batch's UnitLedger).
        self.reissues = 0
        # Unique per-coordinator token baked into every task id: without it,
        # two campaigns reusing one job directory would collide on
        # "batch-0001" and the second would consume the first's stale result
        # files (or hang on its DONE marker).
        self._run_token = uuid.uuid4().hex[:8]

    # -- lifecycle ------------------------------------------------------
    def start(self) -> str:
        """Start serving (bind the socket / initialise the job directory).

        Called implicitly by the first batch; calling it eagerly is useful
        to learn the actual address when binding port 0.  Returns the
        coordinator address (socket mode) or the job directory path.
        """
        if self._closed:
            raise RuntimeError("this DistributedBackend has been shut down")
        if self.coordinator is not None:
            if self._server is None:
                host, port = _parse_address(self.coordinator)
                self._server = _CoordinatorServer(host, port, auth_token=self.auth_token)
            return self._server.address
        self._init_job_dir()
        return str(self.job_dir)

    def shutdown(self, *, drain_seconds: float = 0.0) -> None:
        """Stop serving: close worker connections / write the STOP marker.

        Connected socket workers see EOF and exit; job-directory workers see
        ``STOP`` and exit once no claimable work remains.  Idempotent.

        ``drain_seconds`` > 0 waits (up to that long) for the in-flight
        batch's ledger to finish before closing, so a service shutting down
        does not sever workers mid-unit when the remaining work is almost
        done.  The default tears down immediately, as before.
        """
        if self._closed:
            return
        if drain_seconds > 0 and self._server is not None:
            deadline = time.monotonic() + drain_seconds
            while time.monotonic() < deadline:
                ledger = self._server._current_ledger()
                if ledger is None or ledger.done:
                    break
                time.sleep(min(0.05, self.poll_interval))
        self._closed = True
        if self._server is not None:
            self._server.close()
            self._server = None
        if self.job_dir is not None and self.job_dir.exists():
            (self.job_dir / "STOP").touch()

    def __enter__(self) -> "DistributedBackend":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def describe(self) -> str:
        transport = (
            f"coordinator={self.coordinator}"
            if self.coordinator is not None
            else f"job_dir={self.job_dir}"
        )
        return f"{self.name}[{transport}]"

    # -- BatchExecutor interface ---------------------------------------
    def imap_unordered(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        *,
        chunksize: int | None = None,
    ) -> Iterator[Any]:
        payloads = list(payloads)
        if not payloads:
            return iter(())
        self.start()
        self._batch_counter += 1
        task_id = f"run-{self._run_token}-batch-{self._batch_counter:04d}"
        unit_size = self.unit_size if chunksize is None else max(1, chunksize)
        units = shard_units(fn, payloads, task_id=task_id, unit_size=unit_size)
        if self.coordinator is not None:
            return self._iter_socket_results(units)
        return self._iter_job_dir_results(units)

    # -- socket transport ----------------------------------------------
    def _iter_socket_results(self, units: list[WorkUnit]) -> Iterator[Any]:
        server = self._server
        assert server is not None  # start() ran in imap_unordered
        ledger = UnitLedger(
            units, lease_seconds=self.lease_seconds, max_failures=self.max_unit_failures
        )
        server.set_ledger(ledger)
        try:
            completed = 0
            deadline = self._new_deadline()
            while completed < len(units):
                try:
                    result = ledger.results.get(timeout=0.2)
                except queue.Empty:
                    self._check_deadline(deadline, f"{len(units) - completed} units pending")
                    continue
                if isinstance(result, _UnitFailure):
                    raise RuntimeError(
                        f"unit {result.unit_id} failed on {self.max_unit_failures} "
                        f"workers, last error: {result.reason}"
                    )
                completed += 1
                deadline = self._new_deadline()
                yield from result.values
        finally:
            server.set_ledger(None)
            ledger.cancel()  # late results from cancelled batches are dropped

    def _new_deadline(self) -> float | None:
        return None if self.batch_timeout is None else time.monotonic() + self.batch_timeout

    def _check_deadline(self, deadline: float | None, detail: str) -> None:
        if deadline is not None and time.monotonic() > deadline:
            raise RuntimeError(
                f"distributed batch made no progress for {self.batch_timeout:g}s "
                f"({detail}); are any workers connected?"
            )

    # -- job-directory transport ---------------------------------------
    def _init_job_dir(self) -> None:
        assert self.job_dir is not None
        self.job_dir.mkdir(parents=True, exist_ok=True)
        meta_path = self.job_dir / "meta.json"
        if meta_path.exists():
            meta = json.loads(meta_path.read_text())
            if meta.get("protocol") != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"job directory {self.job_dir} uses protocol "
                    f"{meta.get('protocol')!r}, this coordinator speaks {PROTOCOL_VERSION}"
                )
        # (Re)write the metadata so a reused directory reflects *this*
        # coordinator's configuration, not the first-ever campaign's.
        _atomic_write_bytes(
            meta_path,
            json.dumps(
                {
                    "protocol": PROTOCOL_VERSION,
                    "max_unit_failures": self.max_unit_failures,
                    "lease_seconds": self.lease_seconds,
                }
            ).encode("utf-8"),
        )
        # Clear a previous campaign's shutdown marker, or freshly launched
        # workers would exit on their first idle scan and this campaign
        # would wait for them forever.
        try:
            (self.job_dir / "STOP").unlink()
        except OSError:
            pass

    def _batch_dir(self, task_id: str) -> Path:
        assert self.job_dir is not None
        return self.job_dir / "batches" / task_id

    def _iter_job_dir_results(self, units: list[WorkUnit]) -> Iterator[Any]:
        batch_dir = self._batch_dir(units[0].task_id)
        for sub in ("units", "claims", "results", "errors"):
            (batch_dir / sub).mkdir(parents=True, exist_ok=True)
        for unit in units:
            path = batch_dir / "units" / f"{unit.block_index:05d}.unit"
            _atomic_write_bytes(path, pickle.dumps(unit))
        pending = {unit.block_index: unit for unit in units}
        try:
            deadline = self._new_deadline()
            while pending:
                progressed = False
                for block_index in sorted(pending):
                    result_path = batch_dir / "results" / f"{block_index:05d}.result"
                    if not result_path.exists():
                        continue
                    values = pickle.loads(result_path.read_bytes())
                    pending.pop(block_index)
                    progressed = True
                    deadline = self._new_deadline()
                    yield from values
                if pending and not progressed:
                    self._raise_on_exhausted_units(batch_dir, pending)
                    self._reissue_stale_claims(batch_dir, pending)
                    self._check_deadline(deadline, f"{len(pending)} units pending")
                    time.sleep(self.poll_interval)
        finally:
            # DONE even on early close, so workers stop scanning this batch.
            (batch_dir / "DONE").touch()

    def _raise_on_exhausted_units(self, batch_dir: Path, pending: dict[int, WorkUnit]) -> None:
        """Fail the batch when a unit has crashed on max_unit_failures workers.

        Each failed execution leaves one ``errors/{block}.{attempt-id}.error``
        file; a unit accumulating ``max_unit_failures`` of them is
        deterministically broken, and polling forever would hide it.
        """
        for block_index in pending:
            errors = sorted((batch_dir / "errors").glob(f"{block_index:05d}.*.error"))
            if len(errors) >= self.max_unit_failures:
                reason = errors[-1].read_text(errors="replace").strip()
                raise RuntimeError(
                    f"unit {pending[block_index].unit_id} failed on "
                    f"{len(errors)} workers, last error: {reason}"
                )

    def _reissue_stale_claims(self, batch_dir: Path, pending: dict[int, WorkUnit]) -> None:
        """Delete claims whose worker produced no result within the lease.

        Workers heartbeat their claim's mtime on a timer while executing, so
        a stale claim means a dead (or wedged) worker, not a slow unit.
        Deleting the claim lets any live worker re-claim the unit; if the
        original worker was merely slow and both finish, the atomic result
        rename makes the duplicate invisible (identical deterministic bytes).
        """
        now = time.time()
        for block_index in pending:
            claim_path = batch_dir / "claims" / f"{block_index:05d}.claim"
            try:
                age = now - claim_path.stat().st_mtime
            except OSError:
                continue  # unclaimed (or just completed): nothing to re-issue
            if age > self.lease_seconds:
                try:
                    claim_path.unlink()
                    self.reissues += 1
                except OSError:
                    pass


# ----------------------------------------------------------------------
# Worker entry point (used by `repro-lasvegas worker` and by tests)
# ----------------------------------------------------------------------
@dataclasses.dataclass
class WorkerStats:
    """What one worker session accomplished (printed by the CLI on exit).

    ``units_completed``/``runs_completed`` count every unit resolved and
    submitted, including those served from the shared unit cache;
    ``cache_hits`` is the subset that skipped execution.
    """

    units_completed: int = 0
    runs_completed: int = 0
    cache_hits: int = 0


def run_worker(
    *,
    coordinator: str | None = None,
    job_dir: str | Path | None = None,
    executor: BatchExecutor | None = None,
    cache_dir: str | Path | None = None,
    poll_interval: float = 0.2,
    connect_timeout: float = 30.0,
    max_units: int | None = None,
    name: str | None = None,
    token: str | None = None,
    heartbeat_seconds: float = 5.0,
) -> WorkerStats:
    """Pull and execute work units until the coordinator shuts down.

    Parameters
    ----------
    coordinator, job_dir:
        Exactly one transport: the coordinator's ``HOST:PORT``, or the
        shared job directory.
    executor:
        Local backend units run through (default: :class:`SerialBackend`).
        Must be a per-host backend, not another :class:`DistributedBackend`.
        Note that :class:`ProcessBackend` builds its spawn pool per unit, so
        it only pays off when the coordinator's ``unit_size`` is large
        enough to amortise pool startup (seconds, mostly numpy imports).
    cache_dir:
        Shared observation-cache directory; unit results are read/written
        under ``<cache_dir>/units/`` so re-issued or repeated units are free.
    poll_interval:
        Sleep between polls while idle (socket: between ``request`` retries;
        job dir: between directory scans).
    connect_timeout:
        How long to keep retrying the initial connection (socket mode) or
        waiting for ``meta.json`` to appear (job-dir mode) — lets workers
        start before the coordinator.
    max_units:
        Stop after completing this many units (mostly for tests).
    name:
        Worker name announced to the coordinator (default: ``host:pid``).
    token:
        Shared secret sent in the socket handshake.  A coordinator started
        with an ``auth_token`` refuses workers whose token does not match;
        socket transport only (the job directory's trust boundary is its
        filesystem permissions).
    heartbeat_seconds:
        Cadence of ``heartbeat`` messages sent while a unit executes
        (socket mode), refreshing the coordinator's leases on this worker's
        units so long-running units are not speculatively re-issued.
        ``0`` disables heartbeats (the pre-v2 behaviour).
    """
    if (coordinator is None) == (job_dir is None):
        raise ValueError("run_worker needs exactly one of coordinator= or job_dir=")
    if token is not None and coordinator is None:
        raise ValueError("token= applies to the socket transport, not job_dir=")
    if isinstance(executor, DistributedBackend):
        raise ValueError("workers must run units on a per-host backend, not 'distributed'")
    stats = WorkerStats()
    worker_name = name or f"{socket.gethostname()}:{os.getpid()}"
    if coordinator is not None:
        _socket_worker_loop(
            coordinator, executor, cache_dir, stats, poll_interval, connect_timeout,
            max_units, worker_name, token, heartbeat_seconds,
        )
    else:
        _job_dir_worker_loop(
            Path(job_dir), executor, cache_dir, stats, poll_interval, connect_timeout,
            max_units, worker_name,
        )
    return stats


def _connect_with_retry(address: str, connect_timeout: float) -> socket.socket:
    host, port = _parse_address(address)
    deadline = time.monotonic() + connect_timeout
    while True:
        try:
            return socket.create_connection((host, port), timeout=connect_timeout)
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.1)


def _socket_worker_loop(
    coordinator: str,
    executor: BatchExecutor | None,
    cache_dir: str | Path | None,
    stats: WorkerStats,
    poll_interval: float,
    connect_timeout: float,
    max_units: int | None,
    worker_name: str,
    token: str | None = None,
    heartbeat_seconds: float = 5.0,
) -> None:
    conn = _connect_with_retry(coordinator, connect_timeout)
    conn.settimeout(None)
    stream = conn.makefile("rwb")
    # The heartbeat thread and the main loop share one socket; every write
    # must hold this lock so messages never interleave mid-line.
    write_lock = threading.Lock()

    def send(message: dict) -> None:
        with write_lock:
            _send(stream, message)

    try:
        hello = {"type": "hello", "protocol": PROTOCOL_VERSION, "worker": worker_name}
        if token is not None:
            hello["token"] = token
        _send(stream, hello)
        reply = _recv(stream)
        if reply is None:
            return  # coordinator went away before the handshake finished
        if reply.get("type") == "error":
            raise ProtocolError(reply.get("reason", "coordinator rejected the handshake"))
        if reply.get("type") != "welcome":
            raise ProtocolError(f"unexpected handshake reply: {reply!r}")
        completed = 0
        while max_units is None or completed < max_units:
            send({"type": "request"})
            message = _recv(stream)
            if message is None:
                break  # clean shutdown: the coordinator closed the connection
            if message["type"] == "idle":
                time.sleep(poll_interval)
                continue
            if message["type"] == "error":
                raise ProtocolError(message.get("reason", "coordinator error"))
            unit: WorkUnit = _decode(message["payload"])
            # While the unit executes, a side thread heartbeats so the
            # coordinator keeps refreshing this worker's leases instead of
            # speculatively re-issuing a long unit to someone else.
            hb_stop = threading.Event()
            hb_thread: threading.Thread | None = None
            if heartbeat_seconds > 0:

                def heartbeat_loop(stop: threading.Event = hb_stop) -> None:
                    while not stop.wait(heartbeat_seconds):
                        try:
                            send({"type": "heartbeat", "worker": worker_name})
                        except OSError:
                            return  # connection gone; the main loop will notice

                hb_thread = threading.Thread(
                    target=heartbeat_loop, name=f"heartbeat-{worker_name}", daemon=True
                )
                hb_thread.start()
            try:
                result = _execute_unit_cached(unit, executor, cache_dir, stats)
            except Exception as exc:
                # A crashing payload must not kill the worker: report the
                # failure so the coordinator can retry elsewhere (and give
                # up loudly after max_unit_failures), then keep serving.
                hb_stop.set()
                if hb_thread is not None:
                    hb_thread.join()
                send({"type": "failed", "unit_id": unit.unit_id, "reason": repr(exc)})
                continue
            hb_stop.set()
            if hb_thread is not None:
                hb_thread.join()
            send({"type": "result", "unit_id": result.unit_id, "payload": _encode(result)})
            completed += 1
    except (BrokenPipeError, ConnectionResetError):
        pass  # coordinator died mid-session; our units will be re-issued
    finally:
        try:
            stream.close()
        except OSError:
            pass
        conn.close()


def _job_dir_worker_loop(
    job_dir: Path,
    executor: BatchExecutor | None,
    cache_dir: str | Path | None,
    stats: WorkerStats,
    poll_interval: float,
    connect_timeout: float,
    max_units: int | None,
    worker_name: str,
) -> None:
    meta_path = job_dir / "meta.json"
    start_wall = time.time()
    deadline = time.monotonic() + connect_timeout
    while not meta_path.exists():
        if time.monotonic() >= deadline:
            raise FileNotFoundError(
                f"no coordinator metadata at {meta_path} after {connect_timeout:g}s"
            )
        time.sleep(0.1)
    meta = json.loads(meta_path.read_text())
    if meta.get("protocol") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"job directory {job_dir} uses protocol {meta.get('protocol')!r}, "
            f"this worker speaks {PROTOCOL_VERSION}"
        )
    max_failures = int(meta.get("max_unit_failures", 3))
    lease_seconds = float(meta.get("lease_seconds", 30.0))
    safe_name = _filename_safe(worker_name)
    completed = 0
    while max_units is None or completed < max_units:
        did_work = False
        for batch_dir in sorted(p for p in (job_dir / "batches").glob("*") if p.is_dir()):
            if (batch_dir / "DONE").exists():
                continue
            for unit_path in sorted((batch_dir / "units").glob("*.unit")):
                block = unit_path.stem
                result_path = batch_dir / "results" / f"{block}.result"
                if result_path.exists():
                    continue
                # A unit that already crashed max_unit_failures times is the
                # coordinator's to fail; retrying it again only burns time.
                attempts = len(list((batch_dir / "errors").glob(f"{block}.*.error")))
                if attempts >= max_failures:
                    continue
                claim_path = batch_dir / "claims" / f"{block}.claim"
                try:
                    with open(claim_path, "x") as claim:
                        claim.write(json.dumps({"worker": worker_name, "time": time.time()}))
                except FileExistsError:
                    continue  # another worker owns (or owned) this unit

                # Heartbeat the claim's mtime on a timer for as long as the
                # unit runs, so the coordinator's lease only expires claims
                # of dead workers — never of live workers on slow units
                # (heavy-tailed runs routinely outlast any fixed lease).
                stop_heartbeat = threading.Event()

                def heartbeat_loop(
                    path: Path = claim_path, stop: threading.Event = stop_heartbeat
                ) -> None:
                    while not stop.wait(max(lease_seconds / 4.0, 0.05)):
                        try:
                            os.utime(path)
                        except OSError:
                            pass  # claim was leased away; dedup covers the rest

                heartbeat = threading.Thread(target=heartbeat_loop, daemon=True)
                heartbeat.start()
                unit: WorkUnit = pickle.loads(unit_path.read_bytes())
                try:
                    result = _execute_unit_cached(unit, executor, cache_dir, stats)
                except Exception as exc:
                    # Leave an error file for the coordinator's failure
                    # accounting and release the claim so the unit can be
                    # retried (here or elsewhere) until attempts run out.
                    error_path = (
                        batch_dir
                        / "errors"
                        / f"{block}.{safe_name}-{os.getpid()}-{attempts + 1}.error"
                    )
                    error_path.parent.mkdir(parents=True, exist_ok=True)
                    error_path.write_text(repr(exc))
                    try:
                        claim_path.unlink()
                    except OSError:
                        pass
                    did_work = True  # progress was made: an attempt was recorded
                    continue
                finally:
                    stop_heartbeat.set()
                    heartbeat.join(timeout=2.0)
                result_path.parent.mkdir(parents=True, exist_ok=True)
                _atomic_write_bytes(result_path, pickle.dumps(list(result.values)))
                # First writer wins; duplicates are byte-identical anyway.
                did_work = True
                completed += 1
                if max_units is not None and completed >= max_units:
                    return
        if not did_work:
            # Honour STOP only when it postdates this worker (a live
            # shutdown) or the connect grace has passed: a stale marker
            # from a previous campaign must not kill workers launched
            # just before the next coordinator starts and clears it.
            stop = job_dir / "STOP"
            try:
                stop_mtime: float | None = stop.stat().st_mtime
            except OSError:
                stop_mtime = None
            if stop_mtime is not None and (
                stop_mtime >= start_wall or time.monotonic() >= deadline
            ):
                return
            time.sleep(poll_interval)
