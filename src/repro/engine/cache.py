"""On-disk cache for collected observation batches.

Solver campaigns dominate the cost of every solver-backed experiment, yet
for a fixed ``(solver, configuration, problem, base seed, run count)`` the
batch is fully deterministic — so re-running it is pure waste.
:class:`ObservationCache` persists each batch as JSON under a key derived
from exactly those ingredients; repeated campaigns (across processes, CLI
invocations or backends) are then free.  Because seed derivation is
backend-independent (see :mod:`repro.engine.seeding`), a batch collected on
one backend is a valid cache hit for every other backend.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pickle
from pathlib import Path
from typing import Any

import numpy as np

from repro.multiwalk.observations import RuntimeObservations
from repro.solvers.base import LasVegasAlgorithm

__all__ = ["ObservationCache", "algorithm_fingerprint"]


def _token(value: Any) -> str:
    """Render one constituent of an algorithm's identity as a stable string."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = dataclasses.asdict(value)
        inner = ",".join(f"{k}={_token(v)}" for k, v in sorted(fields.items()))
        return f"{type(value).__name__}({inner})"
    if isinstance(value, np.ndarray):
        return f"ndarray({value.dtype},{value.shape},{hashlib.sha256(value.tobytes()).hexdigest()[:16]})"
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    if isinstance(value, (list, tuple, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, frozenset) else value
        return f"{type(value).__name__}[" + ",".join(_token(v) for v in items) + "]"
    # Arbitrary objects (problem instances, CNF formulas, ...): hash the
    # pickled content.  A repr() fallback would collide whenever two
    # different instances print alike (e.g. two random k-SAT formulas with
    # the same clause/variable counts), silently serving the wrong batch.
    try:
        digest = hashlib.sha256(pickle.dumps(value)).hexdigest()[:16]
    except Exception:
        return repr(value)
    name = type(value).__name__
    if hasattr(value, "describe") and callable(value.describe):
        return f"{name}[{value.describe()},{digest}]"
    return f"{name}[{digest}]"


def algorithm_fingerprint(algorithm: LasVegasAlgorithm) -> str:
    """Stable hex digest of an algorithm's class, problem and configuration.

    Covers every public instance attribute (solver config dataclasses,
    problem instances and formulas by pickled-content hash, raw arrays by
    content hash), so two solver objects built the same way collide and any
    parameter or instance-data change produces a fresh key.

    The fingerprint reflects the algorithm's *current* state; callers must
    take it before running (see :func:`repro.engine.core.collect_batch`).
    Algorithms that mutate instance attributes during ``run()`` therefore
    miss the cache across mutated states — a safe failure mode (re-run, not
    wrong data); keep runtime counters out of instance attributes.
    """
    parts = [type(algorithm).__qualname__, algorithm.describe()]
    for attr, value in sorted(vars(algorithm).items()):
        parts.append(f"{attr}={_token(value)}")
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


class ObservationCache:
    """Directory of JSON-serialised :class:`RuntimeObservations` batches.

    Files are named ``{prefix}-{digest}.json`` where the digest hashes the
    full cache key ``(algorithm fingerprint, label, n_runs, base_seed)``.
    The cache is purely content-addressed: there is no invalidation beyond
    "a different key is a different file", which is exactly right for
    deterministic campaigns.
    """

    def __init__(self, directory: str | Path, *, prefix: str = "observations") -> None:
        self.directory = Path(directory)
        self.prefix = prefix
        self.directory.mkdir(parents=True, exist_ok=True)

    def key(
        self,
        algorithm: LasVegasAlgorithm,
        n_runs: int,
        base_seed: int,
        *,
        label: str | None = None,
    ) -> str:
        """Hex digest identifying one campaign."""
        ingredients = "|".join(
            [
                algorithm_fingerprint(algorithm),
                label or algorithm.describe(),
                f"n_runs={int(n_runs)}",
                f"base_seed={int(base_seed)}",
            ]
        )
        return hashlib.sha256(ingredients.encode()).hexdigest()[:24]

    def path_for(
        self,
        algorithm: LasVegasAlgorithm,
        n_runs: int,
        base_seed: int,
        *,
        label: str | None = None,
    ) -> Path:
        """Cache file a campaign with these parameters lives at."""
        digest = self.key(algorithm, n_runs, base_seed, label=label)
        return self.directory / f"{self.prefix}-{digest}.json"

    def load(
        self,
        algorithm: LasVegasAlgorithm,
        n_runs: int,
        base_seed: int,
        *,
        label: str | None = None,
    ) -> RuntimeObservations | None:
        """Return the cached batch, or ``None`` on a miss."""
        path = self.path_for(algorithm, n_runs, base_seed, label=label)
        return self.read_batch(path)

    def store(
        self,
        observations: RuntimeObservations,
        algorithm: LasVegasAlgorithm,
        n_runs: int,
        base_seed: int,
        *,
        label: str | None = None,
    ) -> Path:
        """Persist a batch and return the file it was written to."""
        path = self.path_for(algorithm, n_runs, base_seed, label=label)
        self.write_batch(observations, path)
        return path

    # -- persistence hooks ---------------------------------------------
    # Key derivation above is the contract every layer shares; *where* the
    # bytes live is a policy subclasses may override (the campaign service
    # routes these through a shared multi-tenant store with LRU eviction).
    def read_batch(self, path: Path) -> RuntimeObservations | None:
        """Read the batch at a derived cache path (``None`` on a miss)."""
        if not path.exists():
            return None
        return RuntimeObservations.load(path)

    def write_batch(self, observations: RuntimeObservations, path: Path) -> None:
        """Write a batch to a derived cache path."""
        observations.save(path)
