"""Unified parallel execution engine for run campaigns.

Every layer of this package that launches independent Las Vegas runs — the
sequential batch collector, the multi-walk executors, the experiment
campaign layer, the CLI and the benchmarks — routes through this subsystem
instead of rolling its own loop or pool:

* :mod:`repro.engine.seeding` — the single deterministic seed-derivation
  primitive (``spawn_seeds``), shared so that runs are identical no matter
  which layer or backend launches them.
* :mod:`repro.engine.backends` — the :class:`BatchExecutor` strategy
  interface with serial, thread-pool and spawn-context process-pool
  implementations, all yielding results as completed and supporting
  cancellation by closing the iterator early.
* :mod:`repro.engine.tasks` — picklable run payloads, the shared worker
  function, and the work-unit protocol dataclasses used by the distributed
  backend.
* :mod:`repro.engine.distributed` — the multi-host backend: a coordinator
  that serves work units to pull-based workers over a line-delimited JSON
  socket protocol (or a filesystem job directory for queue/HPC settings),
  with per-(task, seed-block) work stealing, re-issue on worker death and
  idempotent result dedup.
* :mod:`repro.engine.lockstep` — the SIMD batching backend: whole
  seed-blocks of a lockstep-capable algorithm serviced as single
  vectorised kernel calls (:mod:`repro.sat.vectorized`) in the calling
  process, with a serial fallback for everything else.
* :mod:`repro.engine.progress` — structured per-run progress events.
* :mod:`repro.engine.cache` — content-addressed on-disk cache of collected
  batches, keyed by (solver, config, problem, seed), so repeated campaigns
  are free.
* :mod:`repro.engine.core` — :func:`iter_batch` (the incremental interface:
  ``(index, result)`` pairs streamed as runs finish), :func:`collect_batch`
  (backend-invariant batch collection, reassembled from the stream) and
  :func:`run_race` (first-finisher-wins with deterministic tie-breaking).

The engine's hard invariant: a given ``base_seed`` yields bit-identical
iteration counts on every backend at any worker count — including the
distributed backend, regardless of which host ran which unit.
"""

from repro.engine.backends import (
    BatchExecutor,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    default_worker_count,
    pick_default_backend,
)
from repro.engine.cache import ObservationCache, algorithm_fingerprint
from repro.engine.core import (
    BACKENDS,
    RaceOutcome,
    collect_batch,
    iter_batch,
    iter_runs,
    resolve_backend,
    run_race,
)
from repro.engine.distributed import (
    DistributedBackend,
    ProtocolError,
    UnitLedger,
    WorkerStats,
    execute_unit,
    run_worker,
)
from repro.engine.lockstep import LockstepBackend
from repro.engine.progress import BatchProgress, ProgressCallback
from repro.engine.seeding import spawn_seeds
from repro.engine.tasks import (
    PROTOCOL_VERSION,
    RunTask,
    UnitResult,
    WorkUnit,
    execute_run,
    shard_units,
)

__all__ = [
    "BACKENDS",
    "PROTOCOL_VERSION",
    "BatchExecutor",
    "BatchProgress",
    "DistributedBackend",
    "LockstepBackend",
    "ObservationCache",
    "ProcessBackend",
    "ProgressCallback",
    "ProtocolError",
    "RaceOutcome",
    "RunTask",
    "SerialBackend",
    "ThreadBackend",
    "UnitLedger",
    "UnitResult",
    "WorkUnit",
    "WorkerStats",
    "algorithm_fingerprint",
    "collect_batch",
    "default_worker_count",
    "execute_run",
    "execute_unit",
    "iter_batch",
    "iter_runs",
    "pick_default_backend",
    "resolve_backend",
    "run_race",
    "run_worker",
    "shard_units",
    "spawn_seeds",
]
