"""Unified parallel execution engine for run campaigns.

Every layer of this package that launches independent Las Vegas runs — the
sequential batch collector, the multi-walk executors, the experiment
campaign layer, the CLI and the benchmarks — routes through this subsystem
instead of rolling its own loop or pool:

* :mod:`repro.engine.seeding` — the single deterministic seed-derivation
  primitive (``spawn_seeds``), shared so that runs are identical no matter
  which layer or backend launches them.
* :mod:`repro.engine.backends` — the :class:`BatchExecutor` strategy
  interface with serial, thread-pool and spawn-context process-pool
  implementations, all yielding results as completed and supporting
  cancellation by closing the iterator early.
* :mod:`repro.engine.tasks` — picklable run payloads and the shared worker
  function.
* :mod:`repro.engine.progress` — structured per-run progress events.
* :mod:`repro.engine.cache` — content-addressed on-disk cache of collected
  batches, keyed by (solver, config, problem, seed), so repeated campaigns
  are free.
* :mod:`repro.engine.core` — :func:`collect_batch` (backend-invariant batch
  collection) and :func:`run_race` (first-finisher-wins with deterministic
  tie-breaking).

The engine's hard invariant: a given ``base_seed`` yields bit-identical
iteration counts on every backend at any worker count.
"""

from repro.engine.backends import (
    BatchExecutor,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    default_worker_count,
    pick_default_backend,
)
from repro.engine.cache import ObservationCache, algorithm_fingerprint
from repro.engine.core import (
    BACKENDS,
    RaceOutcome,
    collect_batch,
    resolve_backend,
    run_race,
)
from repro.engine.progress import BatchProgress, ProgressCallback
from repro.engine.seeding import spawn_seeds
from repro.engine.tasks import RunTask, execute_run

__all__ = [
    "BACKENDS",
    "BatchExecutor",
    "BatchProgress",
    "ObservationCache",
    "ProcessBackend",
    "ProgressCallback",
    "RaceOutcome",
    "RunTask",
    "SerialBackend",
    "ThreadBackend",
    "algorithm_fingerprint",
    "collect_batch",
    "default_worker_count",
    "execute_run",
    "pick_default_backend",
    "resolve_backend",
    "run_race",
    "spawn_seeds",
]
