"""Deterministic seed derivation shared by every layer that launches runs.

Every component that fans a base seed out into per-run seeds — sequential
batch collection, the multi-walk executors, per-algorithm campaign splitting
— must derive them the *same* way, or moving a campaign between backends
would silently change its runs.  This module is the single implementation:
seeds come from :class:`numpy.random.SeedSequence` spawning, which guarantees
statistically independent streams, and the derivation depends only on
``(base_seed, n)`` — never on worker counts, scheduling order, or the
execution backend.  That is the invariant that makes backend-equivalence
(`SerialBackend` == `ThreadBackend` == `ProcessBackend`, bit for bit) hold.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_seeds"]


def spawn_seeds(base_seed: int, n: int) -> list[int]:
    """Derive ``n`` independent integer seeds from one base seed.

    The result is a pure function of ``(base_seed, n)``: the i-th child seed
    is the first state word of the i-th spawn of
    ``SeedSequence(base_seed)``.  Appending runs extends the list without
    perturbing earlier entries, so growing a campaign keeps its prefix.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    seq = np.random.SeedSequence(int(base_seed))
    return [int(child.generate_state(1)[0]) for child in seq.spawn(n)]
