"""High-level entry points of the execution engine.

Three operations cover every way this package launches runs:

* :func:`iter_batch` — the incremental interface: run ``n_runs`` independent
  runs and yield ``(index, result)`` pairs *as runs finish*, on any backend.
  Completion order is backend-dependent, but the set of runs is not: seeds
  are derived up front from ``(base_seed, n_runs)`` alone, so the yielded
  indices always form a permutation of ``range(n_runs)`` and reassembling
  results by index gives bit-identical observations on every backend at any
  worker count.  Closing the iterator early cancels outstanding runs.
* :func:`collect_batch` — run ``n_runs`` independent runs and assemble a
  :class:`RuntimeObservations` batch.  Implemented on top of
  :func:`iter_batch` (reassembly by index), so the batch inherits the
  backend-invariance invariant: a given base seed yields bit-identical
  iteration counts on every backend at any worker count (wall-clock times,
  of course, differ).
* :func:`run_race` — the paper's Definition 2 protocol: launch ``n_walks``
  walks, return as soon as the first *solved* walk completes and cancel the
  rest.  When no walk solves within its budget the winner is the completed
  walk with the fewest iterations, ties broken by lowest walk index so the
  outcome is reproducible even under racy completion orders.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path
from typing import Iterator, Sequence

from repro.engine.backends import (
    BatchExecutor,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.engine.cache import ObservationCache
from repro.engine.distributed import DistributedBackend
from repro.engine.lockstep import LockstepBackend
from repro.engine.progress import BatchProgress, ProgressCallback
from repro.engine.seeding import spawn_seeds
from repro.engine.tasks import RunTask, execute_run
from repro.multiwalk.observations import RuntimeObservations
from repro.solvers.base import LasVegasAlgorithm, RunResult

__all__ = [
    "BACKENDS",
    "RaceOutcome",
    "collect_batch",
    "iter_batch",
    "iter_runs",
    "resolve_backend",
    "run_race",
]

#: Registry of backend names accepted wherever a backend can be specified.
BACKENDS: dict[str, type[BatchExecutor]] = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
    "distributed": DistributedBackend,
    "lockstep": LockstepBackend,
}


def resolve_backend(
    backend: str | BatchExecutor | None = None,
    workers: int | None = None,
) -> BatchExecutor:
    """Turn a backend spec (name, instance or ``None``) into an executor.

    ``None`` means :class:`SerialBackend`.  ``workers`` only applies when a
    name is given; pass a configured instance to control anything else.
    """
    if backend is None:
        backend = "serial"
    if isinstance(backend, BatchExecutor):
        if workers is not None:
            raise ValueError("pass workers via the backend instance, not both")
        return backend
    try:
        factory = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {sorted(BACKENDS)}"
        ) from None
    if factory is SerialBackend:
        if workers not in (None, 1):
            raise ValueError("the serial backend runs exactly one worker")
        return SerialBackend()
    if factory is LockstepBackend:
        if workers not in (None, 1):
            raise ValueError(
                "the lockstep backend runs in-process; configure the batch "
                "axis via its width (CLI: --lockstep-width), not workers"
            )
        return LockstepBackend()
    return factory(workers=workers)


def iter_runs(
    algorithm: LasVegasAlgorithm,
    seeds: Sequence[int],
    *,
    indices: Sequence[int] | None = None,
    backend: str | BatchExecutor | None = None,
    workers: int | None = None,
    chunksize: int | None = None,
) -> Iterator[tuple[int, RunResult]]:
    """Run ``algorithm`` once per seed, yielding ``(index, result)`` as runs finish.

    The low-level streaming primitive beneath :func:`iter_batch`: callers
    that derive their own seed streams (the adaptive campaign controller's
    kill-and-reseed rounds) pass explicit seeds and, optionally, the stable
    ``indices`` the results should be attributed to (default: positions in
    ``seeds``).  Completion order is backend-dependent; the index carried
    with each result is not.  Closing the iterator early cancels
    outstanding runs (best effort, see the backends).
    """
    seeds = list(seeds)
    if indices is None:
        indices = range(len(seeds))
    else:
        indices = list(indices)
        if len(indices) != len(seeds):
            raise ValueError(
                f"got {len(indices)} indices for {len(seeds)} seeds; they must pair up"
            )
    executor = resolve_backend(backend, workers)
    payloads = [
        RunTask(algorithm, index, seed) for index, seed in zip(indices, seeds)
    ]
    iterator = executor.imap_unordered(execute_run, payloads, chunksize=chunksize)
    try:
        yield from iterator
    finally:
        close = getattr(iterator, "close", None)
        if close is not None:
            close()  # cancel outstanding runs when the consumer stops early


def iter_batch(
    algorithm: LasVegasAlgorithm,
    n_runs: int,
    *,
    base_seed: int = 0,
    backend: str | BatchExecutor | None = None,
    workers: int | None = None,
    chunksize: int | None = None,
) -> Iterator[tuple[int, RunResult]]:
    """Incrementally run a batch, yielding ``(index, result)`` as runs finish.

    The streaming face of :func:`collect_batch`: same deterministic seed
    derivation (``spawn_seeds(base_seed, n_runs)``), same backends, but
    observations are surfaced the moment their run completes instead of
    after the whole batch.  The yielded indices form a permutation of
    ``range(n_runs)``; reassembling results by index reproduces
    :func:`collect_batch` bit for bit on every backend.  Consumers acting
    on the stream (online fitting, adaptive scheduling) therefore observe
    *when* runs finish without ever influencing *what* the runs are.
    """
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    yield from iter_runs(
        algorithm,
        spawn_seeds(base_seed, n_runs),
        backend=backend,
        workers=workers,
        chunksize=chunksize,
    )


def collect_batch(
    algorithm: LasVegasAlgorithm,
    n_runs: int,
    *,
    base_seed: int = 0,
    label: str | None = None,
    backend: str | BatchExecutor | None = None,
    workers: int | None = None,
    progress: ProgressCallback | None = None,
    cache: ObservationCache | str | Path | None = None,
) -> RuntimeObservations:
    """Collect ``n_runs`` independent runs of ``algorithm`` as one batch.

    Parameters
    ----------
    algorithm:
        The Las Vegas algorithm to benchmark (picklable for ``"process"``).
    n_runs:
        Number of independent runs (the paper collects ~650 per benchmark).
    base_seed:
        Root of the deterministic seed tree; the only input (besides
        ``n_runs``) that influences which runs are executed.
    label:
        Batch label; defaults to ``algorithm.describe()``.
    backend, workers:
        Where to run: ``"serial"`` (default), ``"thread"``, ``"process"``,
        or a configured :class:`BatchExecutor` instance.
    progress:
        Optional callback receiving a :class:`BatchProgress` event per
        completed run, in completion order.
    cache:
        Optional :class:`ObservationCache` (or a directory path, which
        creates one) consulted before running and updated afterwards.
    """
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    batch_label = label or algorithm.describe()
    # Resolve the backend before consulting the cache so that invalid
    # backend/workers arguments fail identically on warm and cold caches.
    executor = resolve_backend(backend, workers)
    cache_path: Path | None = None
    if cache is not None:
        if not isinstance(cache, ObservationCache):
            cache = ObservationCache(cache)
        # Resolve the cache location once, before any run executes: an
        # algorithm whose attributes mutate during run() would otherwise be
        # stored under a post-run fingerprint that no fresh process (probing
        # with a pristine object) could ever look up.
        cache_path = cache.path_for(algorithm, n_runs, base_seed, label=batch_label)
        load_start = time.perf_counter()
        cached = cache.read_batch(cache_path)
        if cached is not None:
            if progress is not None:
                # One completion event (fraction 1.0) so callers driving a
                # progress display can tell a cache hit from a silent hang.
                last = RunResult(
                    solved=bool(cached.solved[-1]),
                    iterations=int(cached.iterations[-1]),
                    runtime_seconds=float(cached.runtimes[-1]),
                    seed=int(cached.seeds[-1]),
                )
                progress(
                    BatchProgress(
                        index=cached.n_runs - 1,
                        completed=cached.n_runs,
                        total=cached.n_runs,
                        result=last,
                        elapsed_seconds=time.perf_counter() - load_start,
                    )
                )
            return cached

    results: list[RunResult | None] = [None] * n_runs
    start = time.perf_counter()
    completed = 0
    for index, result in iter_batch(
        algorithm, n_runs, base_seed=base_seed, backend=executor
    ):
        results[index] = result
        completed += 1
        if progress is not None:
            progress(
                BatchProgress(
                    index=index,
                    completed=completed,
                    total=n_runs,
                    result=result,
                    elapsed_seconds=time.perf_counter() - start,
                )
            )
    assert completed == n_runs  # every backend must deliver every run
    batch = RuntimeObservations.from_results(batch_label, results)
    if cache_path is not None:
        assert isinstance(cache, ObservationCache)
        cache.write_batch(batch, cache_path)
    return batch


@dataclasses.dataclass(frozen=True)
class RaceOutcome:
    """Result of one first-finisher-wins race over ``n_walks`` walks.

    Attributes
    ----------
    n_walks:
        Number of walks launched.
    winner_index:
        Batch index of the winning walk.
    winner_result:
        The winning walk's :class:`RunResult` (its ``runtime_seconds`` is
        the per-walk wall clock, as opposed to the race total below).
    wall_clock_seconds:
        Total wall clock of the race, from launch to cancellation.
    n_completed:
        Walks that finished before the race was decided.
    """

    n_walks: int
    winner_index: int
    winner_result: RunResult
    wall_clock_seconds: float
    n_completed: int

    @property
    def solved(self) -> bool:
        return self.winner_result.solved


def run_race(
    algorithm: LasVegasAlgorithm,
    n_walks: int,
    *,
    base_seed: int = 0,
    backend: str | BatchExecutor | None = None,
    workers: int | None = None,
) -> RaceOutcome:
    """Race ``n_walks`` independent walks; the first solved walk wins.

    As soon as a solved walk arrives, outstanding walks are cancelled
    (threads: pending futures dropped; processes: pool terminated).  If
    every walk exhausts its budget unsolved, the winner is the walk with the
    fewest iterations, ties broken by lowest index — a deterministic rule
    regardless of completion order.
    """
    if n_walks < 1:
        raise ValueError(f"n_walks must be >= 1, got {n_walks}")
    executor = resolve_backend(backend, workers)
    seeds = spawn_seeds(base_seed, n_walks)
    payloads = [RunTask(algorithm, index, seed) for index, seed in enumerate(seeds)]
    winner: tuple[int, RunResult] | None = None
    best_unsolved: tuple[int, RunResult] | None = None
    n_completed = 0
    start = time.perf_counter()
    # chunksize=1 so no walk waits behind a queued chunk of the same worker.
    iterator = executor.imap_unordered(execute_run, payloads, chunksize=1)
    try:
        for index, result in iterator:
            n_completed += 1
            if result.solved:
                winner = (index, result)
                break
            if best_unsolved is None or (result.iterations, index) < (
                best_unsolved[1].iterations,
                best_unsolved[0],
            ):
                best_unsolved = (index, result)
        # The race is decided here; measure before cancellation so cleanup
        # cost (pool teardown, walks that cannot be interrupted) is not
        # charged to the race itself.
        elapsed = time.perf_counter() - start
    finally:
        iterator.close()  # cancels outstanding walks (kill-all-others)
    if winner is None:
        winner = best_unsolved
    assert winner is not None  # n_walks >= 1 guarantees at least one result
    return RaceOutcome(
        n_walks=n_walks,
        winner_index=winner[0],
        winner_result=winner[1],
        wall_clock_seconds=elapsed,
        n_completed=n_completed,
    )
