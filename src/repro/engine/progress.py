"""Structured progress reporting for long-running campaigns.

Backends complete runs out of order, so a bare ``(index, result)`` callback
cannot tell the consumer how far along the batch is.  :class:`BatchProgress`
carries both the per-run payload and the batch-level counters; callbacks
receive one event per completed run, in *completion* order (which equals
index order only on the serial backend).
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.solvers.base import RunResult

__all__ = ["BatchProgress", "ProgressCallback"]


@dataclasses.dataclass(frozen=True)
class BatchProgress:
    """Snapshot emitted after each completed run of a batch.

    Attributes
    ----------
    index:
        Stable batch position of the run that just completed.
    completed:
        Number of runs completed so far (including this one).
    total:
        Total number of runs in the batch.
    result:
        The completed run's :class:`RunResult`.
    elapsed_seconds:
        Wall-clock time since the batch started.
    """

    index: int
    completed: int
    total: int
    result: RunResult
    elapsed_seconds: float

    @property
    def fraction(self) -> float:
        """Completed fraction of the batch, in ``[0, 1]``."""
        return self.completed / self.total


ProgressCallback = Callable[[BatchProgress], None]
