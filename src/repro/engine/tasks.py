"""Picklable task payloads executed by the batch backends.

`ProcessBackend` ships tasks to spawn-context worker processes, so both the
payload and the function applied to it must be picklable, module-level
objects.  :class:`RunTask` carries one independent run (algorithm, stable
index, seed); :func:`execute_run` is the worker applied by every backend, so
serial, threaded and process execution run byte-for-byte the same code path.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pickle
from typing import Any, Callable, Sequence

from repro.solvers.base import LasVegasAlgorithm, RunResult

__all__ = [
    "PROTOCOL_VERSION",
    "RunTask",
    "UnitResult",
    "WorkUnit",
    "execute_run",
    "shard_units",
]

#: Version of the coordinator/worker wire protocol (socket and job-dir paths
#: share it).  Bump on any incompatible change to the message shapes below or
#: to the :class:`WorkUnit`/:class:`UnitResult` payloads; coordinators refuse
#: workers announcing a different version rather than mis-decode their data.
#: v2: socket handshake carries an optional auth token and workers send
#: periodic ``heartbeat`` messages while executing a unit.
PROTOCOL_VERSION = 2


@dataclasses.dataclass(frozen=True)
class RunTask:
    """One independent run of a Las Vegas algorithm.

    Attributes
    ----------
    algorithm:
        The algorithm to run.  Must be picklable for :class:`ProcessBackend`
        (every solver in this package is).
    index:
        Stable position of the run inside its batch.  Results are
        reassembled by index, which is what makes out-of-order completion
        invisible to consumers.
    seed:
        Pre-derived seed of the run's random stream (see
        :mod:`repro.engine.seeding`).
    """

    algorithm: LasVegasAlgorithm
    index: int
    seed: int


def execute_run(task: RunTask) -> tuple[int, RunResult]:
    """Execute one task and return ``(index, result)``."""
    return task.index, task.algorithm.run(task.seed)


@dataclasses.dataclass(frozen=True)
class WorkUnit:
    """One distributable block of a batch: the work-stealing granule.

    A campaign's task list is sharded into units of contiguous payloads
    (one unit per ``(task, seed-block)``), each small enough that a straggling
    worker only delays its own block while idle workers steal the rest.

    Attributes
    ----------
    unit_id:
        Globally unique id within a coordinator's lifetime
        (``"{task_id}/{block_index}"``).  Re-issue and result dedup key.
    task_id:
        Id of the batch the unit was sharded from.
    block_index:
        Position of this block inside its batch (blocks are contiguous).
    fn:
        Module-level function applied to each payload (picklable, e.g.
        :func:`execute_run`).
    payloads:
        The block's payloads, in batch order.  Seeds are pre-derived by the
        coordinator (:mod:`repro.engine.seeding`), so results do not depend
        on which worker runs the unit.
    """

    unit_id: str
    task_id: str
    block_index: int
    fn: Callable[[Any], Any]
    payloads: tuple

    def fingerprint(self) -> str:
        """Content digest of the unit's work (id-independent).

        Two units running the same function over the same payloads share a
        fingerprint no matter which campaign, batch or coordinator produced
        them — the key workers use for the shared unit-result cache.
        """
        content = (self.fn.__module__, self.fn.__qualname__, self.payloads)
        return hashlib.sha256(pickle.dumps(content)).hexdigest()[:24]


@dataclasses.dataclass(frozen=True)
class UnitResult:
    """Results of one completed :class:`WorkUnit`.

    ``values`` holds ``fn(payload)`` for every payload of the unit **in
    payload order**, regardless of the order the worker's local backend
    completed them — that is what makes unit results byte-identical across
    worker backends and eligible for content-addressed caching.
    """

    unit_id: str
    values: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))


def shard_units(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    *,
    task_id: str,
    unit_size: int,
) -> list[WorkUnit]:
    """Split a batch into contiguous :class:`WorkUnit` blocks of ``unit_size``."""
    if unit_size < 1:
        raise ValueError(f"unit_size must be >= 1, got {unit_size}")
    payloads = list(payloads)
    return [
        WorkUnit(
            unit_id=f"{task_id}/{block_index}",
            task_id=task_id,
            block_index=block_index,
            fn=fn,
            payloads=tuple(payloads[start : start + unit_size]),
        )
        for block_index, start in enumerate(range(0, len(payloads), unit_size))
    ]
