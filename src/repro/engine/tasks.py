"""Picklable task payloads executed by the batch backends.

`ProcessBackend` ships tasks to spawn-context worker processes, so both the
payload and the function applied to it must be picklable, module-level
objects.  :class:`RunTask` carries one independent run (algorithm, stable
index, seed); :func:`execute_run` is the worker applied by every backend, so
serial, threaded and process execution run byte-for-byte the same code path.
"""

from __future__ import annotations

import dataclasses

from repro.solvers.base import LasVegasAlgorithm, RunResult

__all__ = ["RunTask", "execute_run"]


@dataclasses.dataclass(frozen=True)
class RunTask:
    """One independent run of a Las Vegas algorithm.

    Attributes
    ----------
    algorithm:
        The algorithm to run.  Must be picklable for :class:`ProcessBackend`
        (every solver in this package is).
    index:
        Stable position of the run inside its batch.  Results are
        reassembled by index, which is what makes out-of-order completion
        invisible to consumers.
    seed:
        Pre-derived seed of the run's random stream (see
        :mod:`repro.engine.seeding`).
    """

    algorithm: LasVegasAlgorithm
    index: int
    seed: int


def execute_run(task: RunTask) -> tuple[int, RunResult]:
    """Execute one task and return ``(index, result)``."""
    return task.index, task.algorithm.run(task.seed)
