"""Figures 8–13: per-benchmark distribution fits and predicted speed-ups.

* Figure 8 / 10 / 12 — histogram of the observed iteration counts overlaid
  with the fitted distribution (shifted exponential for ALL-INTERVAL,
  shifted lognormal for MAGIC-SQUARE, plain exponential for COSTAS), plus
  the Kolmogorov–Smirnov verdict the paper quotes.
* Figure 9 / 11 / 13 — the speed-up curve predicted from that fit as a
  function of the number of cores, with its asymptotic limit.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping


from repro.core.fitting import FitResult, fit_distribution
from repro.core.speedup import SpeedupCurve, SpeedupModel
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import collect_benchmark_observations
from repro.experiments.report import format_series
from repro.multiwalk.observations import RuntimeObservations
from repro.stats.histogram import HistogramOverlay, histogram_with_fit

__all__ = [
    "DistributionFitFigure",
    "PredictedSpeedupFigure",
    "figure8_all_interval_fit",
    "figure9_all_interval_prediction",
    "figure10_magic_square_fit",
    "figure11_magic_square_prediction",
    "figure12_costas_fit",
    "figure13_costas_prediction",
]


@dataclasses.dataclass(frozen=True)
class DistributionFitFigure:
    """Histogram + fitted density + KS verdict for one benchmark."""

    title: str
    benchmark: str
    fit: FitResult
    histogram: HistogramOverlay

    def format(self) -> str:
        lines = [self.title, self.fit.summary(), "", self.histogram.to_ascii()]
        return "\n".join(lines)


@dataclasses.dataclass(frozen=True)
class PredictedSpeedupFigure:
    """Speed-up curve predicted from a fitted distribution."""

    title: str
    benchmark: str
    fit: FitResult
    curve: SpeedupCurve
    limit: float

    def format(self) -> str:
        body = format_series(
            list(self.curve.cores),
            {"predicted speed-up": list(self.curve.speedups)},
            title=self.title,
        )
        return body + f"\nasymptotic limit: {self.limit:.4g}"


def _observations(
    config: ExperimentConfig | None,
    observations: Mapping[str, RuntimeObservations] | None,
) -> tuple[ExperimentConfig, Mapping[str, RuntimeObservations]]:
    config = config or ExperimentConfig.quick()
    observations = observations or collect_benchmark_observations(config)
    return config, observations


def _fit_for(config: ExperimentConfig, observations: Mapping[str, RuntimeObservations], key: str) -> FitResult:
    values = observations[key].values("iterations")
    return fit_distribution(
        values,
        config.paper_family(key),
        shift_rule=config.paper_shift_rule(key),
    )


def _fit_figure(
    config: ExperimentConfig,
    observations: Mapping[str, RuntimeObservations],
    key: str,
    figure_number: int,
) -> DistributionFitFigure:
    fit = _fit_for(config, observations, key)
    values = observations[key].values("iterations")
    label = observations[key].label
    return DistributionFitFigure(
        title=(
            f"Figure {figure_number}. Observed iteration counts for {label} "
            f"with fitted {fit.family}"
        ),
        benchmark=key,
        fit=fit,
        histogram=histogram_with_fit(values, fit.distribution),
    )


def _prediction_figure(
    config: ExperimentConfig,
    observations: Mapping[str, RuntimeObservations],
    key: str,
    figure_number: int,
    max_cores: int = 256,
) -> PredictedSpeedupFigure:
    fit = _fit_for(config, observations, key)
    model = SpeedupModel(fit.distribution)
    cores = sorted(set(list(range(1, max_cores + 1, max(1, max_cores // 32))) + [max_cores]))
    label = observations[key].label
    return PredictedSpeedupFigure(
        title=f"Figure {figure_number}. Predicted speed-up for {label} ({fit.family})",
        benchmark=key,
        fit=fit,
        curve=model.curve(cores),
        limit=model.limit(),
    )


# ----------------------------------------------------------------------
def figure8_all_interval_fit(config=None, observations=None) -> DistributionFitFigure:
    """Figure 8: ALL-INTERVAL histogram with its shifted-exponential fit."""
    config, observations = _observations(config, observations)
    return _fit_figure(config, observations, "AI", 8)


def figure9_all_interval_prediction(config=None, observations=None) -> PredictedSpeedupFigure:
    """Figure 9: predicted speed-up for ALL-INTERVAL (finite limit)."""
    config, observations = _observations(config, observations)
    return _prediction_figure(config, observations, "AI", 9)


def figure10_magic_square_fit(config=None, observations=None) -> DistributionFitFigure:
    """Figure 10: MAGIC-SQUARE histogram with its shifted-lognormal fit."""
    config, observations = _observations(config, observations)
    return _fit_figure(config, observations, "MS", 10)


def figure11_magic_square_prediction(config=None, observations=None) -> PredictedSpeedupFigure:
    """Figure 11: predicted speed-up for MAGIC-SQUARE (lognormal model)."""
    config, observations = _observations(config, observations)
    return _prediction_figure(config, observations, "MS", 11)


def figure12_costas_fit(config=None, observations=None) -> DistributionFitFigure:
    """Figure 12: COSTAS histogram with its (non-shifted) exponential fit."""
    config, observations = _observations(config, observations)
    return _fit_figure(config, observations, "Costas", 12)


def figure13_costas_prediction(config=None, observations=None) -> PredictedSpeedupFigure:
    """Figure 13: predicted speed-up for COSTAS (essentially linear)."""
    config, observations = _observations(config, observations)
    return _prediction_figure(config, observations, "Costas", 13)
