"""Figures 6, 7 and 14: measured speed-up curves.

* Figure 6 — measured speed-ups of the CSPLib benchmarks (MAGIC-SQUARE and
  ALL-INTERVAL) against the ideal linear speed-up, 16…256 cores.
* Figure 7 — measured speed-up of COSTAS, which stays essentially linear.
* Figure 14 — COSTAS speed-up extended to thousands of cores (the paper
  adapts this figure from the 8192-core JUGENE experiment) together with
  the model's prediction, showing the predicted linear scaling holds.

"Measured" means the simulated independent multi-walk over fresh sequential
runs (block minima), the documented stand-in for the paper's cluster.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

import numpy as np

from repro.core.prediction import predict_speedup_curve
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import collect_benchmark_observations
from repro.experiments.report import format_series
from repro.multiwalk.observations import RuntimeObservations
from repro.multiwalk.simulate import MultiwalkMeasurement, simulate_multiwalk_speedups

__all__ = [
    "MeasuredSpeedupFigure",
    "figure6_csplib_speedups",
    "figure7_costas_speedups",
    "figure14_costas_extended",
]


@dataclasses.dataclass(frozen=True)
class MeasuredSpeedupFigure:
    """Measured speed-up curves (plus optional predicted/ideal references)."""

    title: str
    cores: tuple[int, ...]
    series: Mapping[str, tuple[float, ...]]

    def speedup(self, series_name: str, n_cores: int) -> float:
        values = dict(zip(self.cores, self.series[series_name]))
        return values[int(n_cores)]

    def format(self) -> str:
        return format_series(
            list(self.cores),
            {name: list(values) for name, values in self.series.items()},
            title=self.title,
        )


def _measure(
    observations: RuntimeObservations,
    cores: tuple[int, ...],
    config: ExperimentConfig,
    rng: np.random.Generator,
) -> MultiwalkMeasurement:
    return simulate_multiwalk_speedups(
        observations,
        cores,
        measure="iterations",
        n_parallel_runs=config.n_parallel_runs,
        rng=rng,
    )


def figure6_csplib_speedups(
    config: ExperimentConfig | None = None,
    observations: Mapping[str, RuntimeObservations] | None = None,
) -> MeasuredSpeedupFigure:
    """Figure 6: measured speed-ups for the CSPLib benchmarks (MS and AI)."""
    config = config or ExperimentConfig.quick()
    observations = observations or collect_benchmark_observations(config)
    rng = np.random.default_rng(config.base_seed + 6)
    cores = tuple(config.cores)
    ms = _measure(observations["MS"], cores, config, rng)
    ai = _measure(observations["AI"], cores, config, rng)
    series = {
        "Ideal": tuple(float(c) for c in cores),
        observations["MS"].label: ms.speedups,
        observations["AI"].label: ai.speedups,
    }
    return MeasuredSpeedupFigure(
        title="Figure 6. Measured speed-ups for the CSPLib benchmarks",
        cores=cores,
        series=series,
    )


def figure7_costas_speedups(
    config: ExperimentConfig | None = None,
    observations: Mapping[str, RuntimeObservations] | None = None,
) -> MeasuredSpeedupFigure:
    """Figure 7: measured speed-up for the COSTAS ARRAY problem."""
    config = config or ExperimentConfig.quick()
    observations = observations or collect_benchmark_observations(config)
    rng = np.random.default_rng(config.base_seed + 7)
    cores = tuple(config.cores)
    costas = _measure(observations["Costas"], cores, config, rng)
    series = {
        "Ideal": tuple(float(c) for c in cores),
        observations["Costas"].label: costas.speedups,
    }
    return MeasuredSpeedupFigure(
        title="Figure 7. Measured speed-ups for the COSTAS ARRAY problem",
        cores=cores,
        series=series,
    )


def figure14_costas_extended(
    config: ExperimentConfig | None = None,
    observations: Mapping[str, RuntimeObservations] | None = None,
) -> MeasuredSpeedupFigure:
    """Figure 14: COSTAS speed-up at large core counts, measured vs predicted.

    The measured curve uses the simulated multi-walk; the predicted curve is
    the exponential model fitted with the paper's zero-shift rule.  The
    point of the figure is that both stay close to the ideal linear line far
    beyond 256 cores.
    """
    config = config or ExperimentConfig.quick()
    observations = observations or collect_benchmark_observations(config)
    rng = np.random.default_rng(config.base_seed + 14)
    cores = tuple(list(config.cores) + list(config.extended_cores))
    costas_obs = observations["Costas"]
    measured = _measure(costas_obs, cores, config, rng)
    prediction = predict_speedup_curve(
        costas_obs.values("iterations"),
        cores,
        family=config.paper_family("Costas"),
        shift_rule=config.paper_shift_rule("Costas"),
    )
    series = {
        "Ideal": tuple(float(c) for c in cores),
        f"{costas_obs.label} (measured)": measured.speedups,
        f"{costas_obs.label} (predicted)": tuple(prediction.speedup(c) for c in cores),
    }
    return MeasuredSpeedupFigure(
        title="Figure 14. COSTAS speed-up at large core counts (measured vs predicted)",
        cores=cores,
        series=series,
    )
