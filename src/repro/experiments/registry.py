"""Registry mapping paper table/figure identifiers to experiment functions."""

from __future__ import annotations

from typing import Callable, Mapping

from repro.experiments.config import ExperimentConfig
from repro.experiments.data import collect_benchmark_observations
from repro.experiments import figures_experiments, figures_fits, figures_model, tables

__all__ = ["EXPERIMENTS", "list_experiments", "run_experiment"]

#: Experiment id -> (callable, needs_observations, description).
EXPERIMENTS: Mapping[str, tuple[Callable, bool, str]] = {
    "table1": (tables.table1_sequential_times, True, "Sequential execution times"),
    "table2": (tables.table2_sequential_iterations, True, "Sequential iteration counts"),
    "table3": (tables.table3_time_speedups, True, "Measured speed-ups w.r.t. time"),
    "table4": (tables.table4_iteration_speedups, True, "Measured speed-ups w.r.t. iterations"),
    "table5": (tables.table5_prediction_comparison, True, "Experimental vs predicted speed-ups"),
    "figure1": (figures_model.figure1_gaussian_min, False, "Min-distribution of a gaussian"),
    "figure2": (figures_model.figure2_exponential_min, False, "Min-distribution of a shifted exponential"),
    "figure3": (figures_model.figure3_exponential_speedup, False, "Predicted speed-up, shifted exponential"),
    "figure4": (figures_model.figure4_lognormal_min, False, "Min-distribution of a lognormal"),
    "figure5": (figures_model.figure5_lognormal_speedup, False, "Predicted speed-up, lognormal"),
    "figure6": (figures_experiments.figure6_csplib_speedups, True, "Measured speed-ups, CSPLib benchmarks"),
    "figure7": (figures_experiments.figure7_costas_speedups, True, "Measured speed-ups, Costas"),
    "figure8": (figures_fits.figure8_all_interval_fit, True, "ALL-INTERVAL histogram + exponential fit"),
    "figure9": (figures_fits.figure9_all_interval_prediction, True, "Predicted speed-up, ALL-INTERVAL"),
    "figure10": (figures_fits.figure10_magic_square_fit, True, "MAGIC-SQUARE histogram + lognormal fit"),
    "figure11": (figures_fits.figure11_magic_square_prediction, True, "Predicted speed-up, MAGIC-SQUARE"),
    "figure12": (figures_fits.figure12_costas_fit, True, "COSTAS histogram + exponential fit"),
    "figure13": (figures_fits.figure13_costas_prediction, True, "Predicted speed-up, COSTAS"),
    "figure14": (figures_experiments.figure14_costas_extended, True, "COSTAS speed-up at large core counts"),
}


def list_experiments() -> list[tuple[str, str]]:
    """Available experiment ids with their one-line descriptions."""
    return [(name, description) for name, (_, _, description) in EXPERIMENTS.items()]


def run_experiment(name: str, config: ExperimentConfig | None = None, **kwargs):
    """Run one experiment by its paper identifier and return its result object.

    Solver-backed experiments share the sequential campaign through the
    observation cache, so running several of them only pays the solver cost
    once per configuration.
    """
    try:
        func, needs_observations, _ = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; known experiments: {known}") from None
    if needs_observations:
        config = config or ExperimentConfig.quick()
        observations = kwargs.pop("observations", None) or collect_benchmark_observations(config)
        return func(config, observations, **kwargs)
    return func(**kwargs)
