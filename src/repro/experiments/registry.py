"""Registry mapping experiment identifiers to experiment functions.

Paper identifiers (``table1`` … ``figure14``) reproduce the evaluation
section; the ``sat_*`` experiments exercise the SAT extension the paper's
conclusion proposes.  Each entry declares which observation campaign it
consumes (``"benchmarks"`` for the three CSP benchmarks, ``"sat"`` for the
planted 3-SAT WalkSAT campaign, ``None`` for pure-model figures) so the CLI
and :func:`run_experiment` collect each campaign at most once per
invocation and share it through the observation caches.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Mapping

from repro.experiments.config import ExperimentConfig
from repro.experiments.data import (
    collect_benchmark_observations,
    collect_sat_observations,
    collect_sat_policy_observations,
)
from repro.experiments.stages import STAGE_KINDS, campaign_stages
from repro.experiments import figures_experiments, figures_fits, figures_model, sat, tables

__all__ = [
    "EXPERIMENTS",
    "ExperimentEntry",
    "OBSERVATION_KINDS",
    "campaign_stages_for",
    "collect_observations_for",
    "list_experiments",
    "run_experiment",
]

#: Observation-campaign kinds an experiment can declare — the registered
#: stage vocabulary of :mod:`repro.experiments.stages`.
OBSERVATION_KINDS: tuple[str, ...] = STAGE_KINDS

#: Campaign collectors per kind (signature of collect_benchmark_observations).
#: Each one executes the corresponding stage definitions through the
#: campaign orchestrator with the controller off, plus in-process memoing.
_COLLECTORS: Mapping[str, Callable] = {
    "benchmarks": collect_benchmark_observations,
    "sat": collect_sat_observations,
    "sat_policies": collect_sat_policy_observations,
}


def campaign_stages_for(config: ExperimentConfig, kinds=OBSERVATION_KINDS):
    """Registered stage definitions for the requested observation kinds.

    The declarative face of the collectors: the returned
    :class:`repro.campaign.StageSpec` DAG is what the ``campaign``
    subcommand hands to :func:`repro.campaign.run_campaign` (with any
    controller), while :func:`collect_observations_for` remains the
    memoised controller-``off`` shortcut the experiments use.
    """
    return campaign_stages(config, kinds=kinds)


@dataclasses.dataclass(frozen=True)
class ExperimentEntry:
    """One registered experiment.

    Attributes
    ----------
    func:
        Experiment function; solver-backed ones take
        ``(config, observations)``, pure-model ones take keyword arguments
        only.
    observations:
        Which campaign the experiment consumes: ``"benchmarks"``, ``"sat"``
        or ``None`` for experiments that run no solver.
    description:
        One-line description shown by ``repro-lasvegas list``.
    """

    func: Callable
    observations: str | None
    description: str

    def __post_init__(self) -> None:
        if self.observations is not None and self.observations not in OBSERVATION_KINDS:
            raise ValueError(
                f"observations must be one of {OBSERVATION_KINDS} or None, "
                f"got {self.observations!r}"
            )


EXPERIMENTS: Mapping[str, ExperimentEntry] = {
    "table1": ExperimentEntry(tables.table1_sequential_times, "benchmarks", "Sequential execution times"),
    "table2": ExperimentEntry(tables.table2_sequential_iterations, "benchmarks", "Sequential iteration counts"),
    "table3": ExperimentEntry(tables.table3_time_speedups, "benchmarks", "Measured speed-ups w.r.t. time"),
    "table4": ExperimentEntry(tables.table4_iteration_speedups, "benchmarks", "Measured speed-ups w.r.t. iterations"),
    "table5": ExperimentEntry(tables.table5_prediction_comparison, "benchmarks", "Experimental vs predicted speed-ups"),
    "figure1": ExperimentEntry(figures_model.figure1_gaussian_min, None, "Min-distribution of a gaussian"),
    "figure2": ExperimentEntry(figures_model.figure2_exponential_min, None, "Min-distribution of a shifted exponential"),
    "figure3": ExperimentEntry(figures_model.figure3_exponential_speedup, None, "Predicted speed-up, shifted exponential"),
    "figure4": ExperimentEntry(figures_model.figure4_lognormal_min, None, "Min-distribution of a lognormal"),
    "figure5": ExperimentEntry(figures_model.figure5_lognormal_speedup, None, "Predicted speed-up, lognormal"),
    "figure6": ExperimentEntry(figures_experiments.figure6_csplib_speedups, "benchmarks", "Measured speed-ups, CSPLib benchmarks"),
    "figure7": ExperimentEntry(figures_experiments.figure7_costas_speedups, "benchmarks", "Measured speed-ups, Costas"),
    "figure8": ExperimentEntry(figures_fits.figure8_all_interval_fit, "benchmarks", "ALL-INTERVAL histogram + exponential fit"),
    "figure9": ExperimentEntry(figures_fits.figure9_all_interval_prediction, "benchmarks", "Predicted speed-up, ALL-INTERVAL"),
    "figure10": ExperimentEntry(figures_fits.figure10_magic_square_fit, "benchmarks", "MAGIC-SQUARE histogram + lognormal fit"),
    "figure11": ExperimentEntry(figures_fits.figure11_magic_square_prediction, "benchmarks", "Predicted speed-up, MAGIC-SQUARE"),
    "figure12": ExperimentEntry(figures_fits.figure12_costas_fit, "benchmarks", "COSTAS histogram + exponential fit"),
    "figure13": ExperimentEntry(figures_fits.figure13_costas_prediction, "benchmarks", "Predicted speed-up, COSTAS"),
    "figure14": ExperimentEntry(figures_experiments.figure14_costas_extended, "benchmarks", "COSTAS speed-up at large core counts"),
    "sat_flips": ExperimentEntry(sat.sat_flips_table, "sat", "Sequential WalkSAT flips on the configured SAT workload"),
    "sat_portfolio": ExperimentEntry(sat.sat_portfolio_table, "sat", "Measured vs predicted WalkSAT portfolio speed-ups"),
    "sat_policies": ExperimentEntry(sat.sat_policy_table, "sat_policies", "WalkSAT/Novelty/Novelty+/adaptive flips on one instance"),
}


def list_experiments() -> list[tuple[str, str]]:
    """Available experiment ids with their one-line descriptions."""
    return [(name, entry.description) for name, entry in EXPERIMENTS.items()]


def collect_observations_for(kind: str, config: ExperimentConfig, **kwargs):
    """Collect (or reuse) the observation campaign of the given kind."""
    try:
        collector = _COLLECTORS[kind]
    except KeyError:
        raise KeyError(
            f"unknown observation kind {kind!r}; known kinds: {sorted(_COLLECTORS)}"
        ) from None
    return collector(config, **kwargs)


def run_experiment(name: str, config: ExperimentConfig | None = None, **kwargs):
    """Run one experiment by its identifier and return its result object.

    Solver-backed experiments share their campaign (CSP benchmarks or the
    SAT workload) through the observation caches, so running several of
    them only pays the solver cost once per configuration.
    """
    try:
        entry = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; known experiments: {known}") from None
    if entry.observations is not None:
        config = config or ExperimentConfig.quick()
        observations = kwargs.pop("observations", None)
        if observations is None:
            observations = collect_observations_for(entry.observations, config)
        return entry.func(config, observations, **kwargs)
    return entry.func(**kwargs)
