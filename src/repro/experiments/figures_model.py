"""Figures 1–5: illustrations of the probabilistic model (no solver needed).

* Figure 1 — min-distribution of a (truncated) gaussian for n = 1, 10, 100,
  1000.
* Figure 2 — min-distribution of a shifted exponential (x0 = 100,
  lambda = 1/1000) for n = 1, 2, 4, 8.
* Figure 3 — predicted speed-up for that shifted exponential up to 256
  cores (limit 11).
* Figure 4 — min-distribution of a lognormal (x0 = 0, mu = 5, sigma = 1)
  for n = 1, 2, 4, 8.
* Figure 5 — predicted speed-up for that lognormal up to 256 cores.

The parameters are exactly the ones printed in the paper's figures.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

import numpy as np

from repro.core.distributions import LogNormalRuntime, ShiftedExponential, TruncatedGaussian
from repro.core.distributions.base import RuntimeDistribution
from repro.core.speedup import SpeedupCurve, SpeedupModel
from repro.experiments.report import format_series, format_table

__all__ = [
    "MinDistributionFigure",
    "SpeedupCurveFigure",
    "figure1_gaussian_min",
    "figure2_exponential_min",
    "figure3_exponential_speedup",
    "figure4_lognormal_min",
    "figure5_lognormal_speedup",
]


@dataclasses.dataclass(frozen=True)
class MinDistributionFigure:
    """Densities of ``Z(n)`` for several ``n`` on a common abscissa grid."""

    title: str
    base: RuntimeDistribution
    grid: np.ndarray
    densities: Mapping[int, np.ndarray]

    def peak_location(self, n_cores: int) -> float:
        """Abscissa of the density peak (moves toward the origin as n grows)."""
        dens = self.densities[n_cores]
        return float(self.grid[int(np.argmax(dens))])

    def format(self) -> str:
        headers = ["runtime"] + [f"n={n}" for n in self.densities]
        stride = max(1, self.grid.size // 20)
        rows = []
        for i in range(0, self.grid.size, stride):
            rows.append(
                [self.grid[i]] + [float(self.densities[n][i]) for n in self.densities]
            )
        return format_table(headers, rows, title=self.title, float_format="{:.3e}")


@dataclasses.dataclass(frozen=True)
class SpeedupCurveFigure:
    """A predicted speed-up curve together with its asymptotic limit."""

    title: str
    base: RuntimeDistribution
    curve: SpeedupCurve
    limit: float

    def format(self) -> str:
        series = {"predicted speed-up": list(self.curve.speedups)}
        body = format_series(
            list(self.curve.cores), series, title=self.title, x_label="cores"
        )
        return body + f"\nasymptotic limit: {self.limit:.4g}"


def _min_densities(
    base: RuntimeDistribution, grid: np.ndarray, core_counts: Sequence[int]
) -> Mapping[int, np.ndarray]:
    return {n: np.asarray(base.min_of(n).pdf(grid), dtype=float) for n in core_counts}


# ----------------------------------------------------------------------
def figure1_gaussian_min() -> MinDistributionFigure:
    """Figure 1: gaussian (cut on R- and renormalised), n = 1, 10, 100, 1000."""
    base = TruncatedGaussian(mu=25.0, sigma=10.0, lower=0.0)
    grid = np.linspace(0.0, 55.0, 221)
    return MinDistributionFigure(
        title="Figure 1. Min-distribution of a truncated gaussian (mu=25, sigma=10)",
        base=base,
        grid=grid,
        densities=_min_densities(base, grid, (1, 10, 100, 1000)),
    )


def figure2_exponential_min() -> MinDistributionFigure:
    """Figure 2: shifted exponential x0=100, lambda=1/1000, n = 1, 2, 4, 8."""
    base = ShiftedExponential(x0=100.0, lam=1.0 / 1000.0)
    grid = np.linspace(0.0, 1100.0, 221)
    return MinDistributionFigure(
        title="Figure 2. Min-distribution of a shifted exponential (x0=100, lambda=1/1000)",
        base=base,
        grid=grid,
        densities=_min_densities(base, grid, (1, 2, 4, 8)),
    )


def figure3_exponential_speedup(max_cores: int = 256) -> SpeedupCurveFigure:
    """Figure 3: predicted speed-up of the shifted exponential of Figure 2."""
    base = ShiftedExponential(x0=100.0, lam=1.0 / 1000.0)
    model = SpeedupModel(base)
    cores = list(range(1, max_cores + 1, max(1, max_cores // 64)))
    if cores[-1] != max_cores:
        cores.append(max_cores)
    return SpeedupCurveFigure(
        title="Figure 3. Predicted speed-up, shifted exponential (x0=100, lambda=1/1000)",
        base=base,
        curve=model.curve(cores),
        limit=model.limit(),
    )


def figure4_lognormal_min() -> MinDistributionFigure:
    """Figure 4: lognormal x0=0, mu=5, sigma=1, n = 1, 2, 4, 8."""
    base = LogNormalRuntime(mu=5.0, sigma=1.0, x0=0.0)
    grid = np.linspace(1.0, 260.0, 260)
    return MinDistributionFigure(
        title="Figure 4. Min-distribution of a lognormal (x0=0, mu=5, sigma=1)",
        base=base,
        grid=grid,
        densities=_min_densities(base, grid, (1, 2, 4, 8)),
    )


def figure5_lognormal_speedup(max_cores: int = 256) -> SpeedupCurveFigure:
    """Figure 5: predicted speed-up of the lognormal of Figure 4."""
    base = LogNormalRuntime(mu=5.0, sigma=1.0, x0=0.0)
    model = SpeedupModel(base)
    cores = list(range(1, max_cores + 1, max(1, max_cores // 32)))
    if cores[-1] != max_cores:
        cores.append(max_cores)
    return SpeedupCurveFigure(
        title="Figure 5. Predicted speed-up, lognormal (x0=0, mu=5, sigma=1)",
        base=base,
        curve=model.curve(cores),
        limit=model.limit(),
    )
