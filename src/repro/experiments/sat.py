"""SAT (WalkSAT portfolio) experiments — the paper-conclusion extension.

The paper closes by proposing to apply its parallel-runtime prediction
model to SAT solvers, where independent multi-walk parallelism is the
*algorithm portfolio* of the SAT community.  These experiments exercise
that claim with the same machinery as Tables 1–5: a sequential WalkSAT
campaign on a planted 3-SAT instance near the phase transition (flips play
the role of iterations), the simulated multi-walk as the measured speed-up,
and both the parametric and the nonparametric predictors.

Registered as ``sat_flips`` and ``sat_portfolio`` in the experiment
registry, so they are available through ``repro-lasvegas run`` / ``list``
and share the engine's observation cache with the ``campaign`` subcommand.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

import numpy as np

from repro.core.prediction import (
    PredictionResult,
    predict_speedup_curve,
    predict_speedup_empirical,
)
from repro.experiments.config import SAT_KEY, ExperimentConfig
from repro.experiments.data import collect_sat_observations
from repro.experiments.report import format_table
from repro.multiwalk.observations import RuntimeObservations
from repro.multiwalk.simulate import MultiwalkMeasurement, simulate_multiwalk_speedups
from repro.stats.descriptive import RuntimeSummary, summarize

__all__ = [
    "SATPortfolioTable",
    "SATSequentialTable",
    "sat_flips_table",
    "sat_portfolio_table",
]


@dataclasses.dataclass(frozen=True)
class SATSequentialTable:
    """Sequential WalkSAT flip statistics (the SAT analogue of Table 2)."""

    label: str
    summary: RuntimeSummary
    success_rate: float

    def rows(self) -> list[list[object]]:
        s = self.summary
        return [[self.label, s.minimum, s.mean, s.median, s.maximum]]

    def format(self) -> str:
        body = format_table(
            ["Instance", "Min", "Mean", "Median", "Max"],
            self.rows(),
            title="SAT. Sequential WalkSAT flips (planted 3-SAT)",
            float_format="{:,.0f}",
        )
        return body + (
            f"\n{self.summary.n_runs} solved runs, success rate {self.success_rate:.0%}"
        )


def sat_flips_table(
    config: ExperimentConfig | None = None,
    observations: Mapping[str, RuntimeObservations] | None = None,
) -> SATSequentialTable:
    """Min/mean/median/max of the sequential WalkSAT flip counts."""
    config = config or ExperimentConfig.quick()
    observations = observations or collect_sat_observations(config)
    batch = observations[SAT_KEY]
    return SATSequentialTable(
        label=batch.label,
        summary=summarize(batch.values("iterations")),
        success_rate=batch.success_rate(),
    )


@dataclasses.dataclass(frozen=True)
class SATPortfolioTable:
    """Measured vs predicted WalkSAT portfolio speed-ups (the SAT Table 5)."""

    label: str
    cores: tuple[int, ...]
    measured: MultiwalkMeasurement
    parametric: PredictionResult
    empirical: PredictionResult

    def relative_error(self, n_cores: int) -> float:
        """|parametric - measured| / measured at one core count."""
        measured = self.measured.speedup(n_cores)
        if measured == 0.0:
            return float("inf")
        return abs(self.parametric.speedup(n_cores) - measured) / measured

    def rows(self) -> list[list[object]]:
        out: list[list[object]] = []
        for series, source in (
            ("measured", self.measured),
            ("parametric", self.parametric),
            ("empirical", self.empirical),
        ):
            row: list[object] = [self.label if series == "measured" else "", series]
            row.extend(source.speedup(c) for c in self.cores)
            out.append(row)
        return out

    def format(self) -> str:
        headers = ["Instance", "series"] + [f"k={c}" for c in self.cores]
        body = format_table(
            headers,
            self.rows(),
            title="SAT. Measured and predicted portfolio speed-ups (flips)",
            float_format="{:.1f}",
        )
        return body + f"\nfitted family: {self.parametric.family}"


def sat_portfolio_table(
    config: ExperimentConfig | None = None,
    observations: Mapping[str, RuntimeObservations] | None = None,
) -> SATPortfolioTable:
    """Simulated portfolio speed-ups vs the parametric and empirical predictors."""
    config = config or ExperimentConfig.quick()
    observations = observations or collect_sat_observations(config)
    batch = observations[SAT_KEY]
    flips = batch.values("iterations")
    rng = np.random.default_rng(config.base_seed + 977)
    measured = simulate_multiwalk_speedups(
        batch,
        config.cores,
        measure="iterations",
        n_parallel_runs=config.n_parallel_runs,
        rng=rng,
    )
    return SATPortfolioTable(
        label=batch.label,
        cores=tuple(config.cores),
        measured=measured,
        parametric=predict_speedup_curve(flips, config.cores),
        empirical=predict_speedup_empirical(flips, config.cores),
    )
