"""SAT (WalkSAT portfolio) experiments — the paper-conclusion extension.

The paper closes by proposing to apply its parallel-runtime prediction
model to SAT solvers, where independent multi-walk parallelism is the
*algorithm portfolio* of the SAT community.  These experiments exercise
that claim with the same machinery as Tables 1–5: a sequential WalkSAT
campaign on the configured instance family (planted / uniform / DIMACS;
flips play the role of iterations), the simulated multi-walk as the
measured speed-up, and both the parametric and the nonparametric
predictors.

Censoring
---------
Uniform-ratio instances near the 4.27 phase transition are not guaranteed
satisfiable, so their campaigns are *censoring-heavy*: runs hitting
``max_flips`` only reveal that the runtime exceeds the budget.  The
sequential table therefore routes every batch containing censored runs
through the censoring-aware machinery of :mod:`repro.core.censoring`
(closed-form censored exponential MLE for the corrected mean) instead of
silently summarising the solved runs only.

Registered as ``sat_flips``, ``sat_portfolio`` and ``sat_policies`` in the
experiment registry, so they are available through ``repro-lasvegas run`` /
``list`` and share the engine's observation cache with the ``campaign``
subcommand.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

import numpy as np

from repro.core.prediction import (
    PredictionResult,
    predict_speedup_curve,
    predict_speedup_empirical,
)
from repro.experiments.config import SAT_KEY, ExperimentConfig
from repro.experiments.data import collect_sat_observations
from repro.experiments.report import format_table
from repro.multiwalk.observations import RuntimeObservations
from repro.multiwalk.simulate import MultiwalkMeasurement, simulate_multiwalk_speedups
from repro.solvers.policies import POLICIES
from repro.stats.descriptive import RuntimeSummary, summarize
from repro.stats.online import censored_mean_or_none

__all__ = [
    "SATPolicyTable",
    "SATPortfolioTable",
    "SATSequentialTable",
    "sat_flips_table",
    "sat_policy_table",
    "sat_portfolio_table",
]


def _censoring_aware_mean(batch: RuntimeObservations) -> float | None:
    """Censored-MLE mean flips, or ``None`` when no correction applies.

    This is the path the uniform-ratio workloads exercise: their unsolved
    runs are right-censored at the flip budget, and dropping them (the
    naive solved-only mean) would bias the fit optimistic.  Every edge case
    (fully-observed, all-censored, single observation) is centralised in
    :func:`repro.stats.online.censored_mean_or_none`, so the tables no
    longer guard them ad hoc.
    """
    return censored_mean_or_none(batch.iterations, ~batch.solved)


@dataclasses.dataclass(frozen=True)
class SATSequentialTable:
    """Sequential WalkSAT flip statistics (the SAT analogue of Table 2).

    ``censored_mean`` is the censoring-corrected mean (censored exponential
    MLE over *all* runs, budget-capped ones included); it is ``None`` when
    every run solved, in which case the naive solved-only mean is unbiased.
    ``summary`` is ``None`` when *no* run solved (an unsatisfiable or
    hopelessly under-budgeted instance): there is nothing to summarise and
    the rate of the censored fit is not identifiable either.
    """

    label: str
    summary: RuntimeSummary | None
    success_rate: float
    censored_mean: float | None = None

    def rows(self) -> list[list[object]]:
        s = self.summary
        if s is None:
            return [[self.label, "-", "-", "-", "-"]]
        return [[self.label, s.minimum, s.mean, s.median, s.maximum]]

    def format(self) -> str:
        body = format_table(
            ["Instance", "Min", "Mean", "Median", "Max"],
            self.rows(),
            title="SAT. Sequential WalkSAT flips",
            float_format="{:,.0f}",
        )
        n_solved = 0 if self.summary is None else self.summary.n_runs
        body += f"\n{n_solved} solved runs, success rate {self.success_rate:.0%}"
        if self.summary is None:
            body += "\nevery run was censored at the flip budget; no fit is identifiable"
        elif self.censored_mean is not None:
            body += f"\ncensoring-aware mean (exponential MLE): {self.censored_mean:,.0f} flips"
        return body


def sat_flips_table(
    config: ExperimentConfig | None = None,
    observations: Mapping[str, RuntimeObservations] | None = None,
) -> SATSequentialTable:
    """Min/mean/median/max of the sequential WalkSAT flip counts.

    Batches containing budget-capped (censored) runs — typical for the
    uniform family near the phase transition — additionally report the
    censoring-aware mean instead of pretending the solved runs are the
    whole story.
    """
    config = config or ExperimentConfig.quick()
    observations = observations or collect_sat_observations(config)
    batch = observations[SAT_KEY]
    solved_any = batch.n_solved > 0
    return SATSequentialTable(
        label=batch.label,
        summary=summarize(batch.values("iterations")) if solved_any else None,
        success_rate=batch.success_rate(),
        censored_mean=_censoring_aware_mean(batch),
    )


@dataclasses.dataclass(frozen=True)
class SATPolicyTable:
    """Per-policy sequential flip statistics on one fixed instance.

    One row per registered flip policy (:data:`~repro.solvers.policies.POLICIES`),
    every batch collected on the same instance with the same seed stream,
    so rows differ only in the policy.  Censoring-heavy batches (uniform
    family) report the censoring-aware mean in place of the naive one.
    """

    label: str
    policies: tuple[str, ...]
    summaries: Mapping[str, "RuntimeSummary | None"]
    success_rates: Mapping[str, float]
    censored_means: Mapping[str, float | None]

    def rows(self) -> list[list[object]]:
        out: list[list[object]] = []
        for index, policy in enumerate(self.policies):
            s = self.summaries[policy]
            corrected = self.censored_means[policy]
            row: list[object] = [
                self.label if index == 0 else "",
                policy,
                f"{self.success_rates[policy]:.0%}",
            ]
            if s is None:
                row.extend(["-", "-", "-"])
            else:
                row.extend([s.mean if corrected is None else corrected, s.median, s.maximum])
            out.append(row)
        return out

    def format(self) -> str:
        body = format_table(
            ["Instance", "policy", "solved", "Mean*", "Median", "Max"],
            self.rows(),
            title="SAT. WalkSAT policy family, sequential flips",
            float_format="{:,.0f}",
        )
        return body + (
            "\n*censoring-aware (exponential MLE) mean where runs hit the flip budget;"
            "\n median/max over solved runs only"
        )


def sat_policy_table(
    config: ExperimentConfig | None = None,
    observations: Mapping[str, RuntimeObservations] | None = None,
) -> SATPolicyTable:
    """Compare every registered flip policy on the configured SAT instance."""
    from repro.experiments.data import collect_sat_policy_observations

    config = config or ExperimentConfig.quick()
    observations = observations or collect_sat_policy_observations(config)
    summaries: dict[str, RuntimeSummary | None] = {}
    success_rates: dict[str, float] = {}
    censored_means: dict[str, float | None] = {}
    label = ""
    for policy in POLICIES:
        batch = observations[f"{SAT_KEY}/{policy}"]
        if not label:
            # The first (default-policy) label names the shared instance.
            label = batch.label
        solved_any = batch.n_solved > 0
        summaries[policy] = summarize(batch.values("iterations")) if solved_any else None
        success_rates[policy] = batch.success_rate()
        censored_means[policy] = _censoring_aware_mean(batch)
    return SATPolicyTable(
        label=label,
        policies=POLICIES,
        summaries=summaries,
        success_rates=success_rates,
        censored_means=censored_means,
    )


@dataclasses.dataclass(frozen=True)
class SATPortfolioTable:
    """Measured vs predicted WalkSAT portfolio speed-ups (the SAT Table 5)."""

    label: str
    cores: tuple[int, ...]
    measured: MultiwalkMeasurement
    parametric: PredictionResult
    empirical: PredictionResult

    def relative_error(self, n_cores: int) -> float:
        """|parametric - measured| / measured at one core count."""
        measured = self.measured.speedup(n_cores)
        if measured == 0.0:
            return float("inf")
        return abs(self.parametric.speedup(n_cores) - measured) / measured

    def rows(self) -> list[list[object]]:
        out: list[list[object]] = []
        for series, source in (
            ("measured", self.measured),
            ("parametric", self.parametric),
            ("empirical", self.empirical),
        ):
            row: list[object] = [self.label if series == "measured" else "", series]
            row.extend(source.speedup(c) for c in self.cores)
            out.append(row)
        return out

    def format(self) -> str:
        headers = ["Instance", "series"] + [f"k={c}" for c in self.cores]
        body = format_table(
            headers,
            self.rows(),
            title="SAT. Measured and predicted portfolio speed-ups (flips)",
            float_format="{:.1f}",
        )
        return body + f"\nfitted family: {self.parametric.family}"


def sat_portfolio_table(
    config: ExperimentConfig | None = None,
    observations: Mapping[str, RuntimeObservations] | None = None,
) -> SATPortfolioTable:
    """Simulated portfolio speed-ups vs the parametric and empirical predictors."""
    config = config or ExperimentConfig.quick()
    observations = observations or collect_sat_observations(config)
    batch = observations[SAT_KEY]
    flips = batch.values("iterations")
    rng = np.random.default_rng(config.base_seed + 977)
    measured = simulate_multiwalk_speedups(
        batch,
        config.cores,
        measure="iterations",
        n_parallel_runs=config.n_parallel_runs,
        rng=rng,
    )
    return SATPortfolioTable(
        label=batch.label,
        cores=tuple(config.cores),
        measured=measured,
        parametric=predict_speedup_curve(flips, config.cores),
        empirical=predict_speedup_empirical(flips, config.cores),
    )
