"""Collection and caching of the sequential solver campaigns.

Every solver-backed experiment (Tables 1–5, Figures 6–14) consumes the same
raw material: a batch of independent sequential Adaptive Search runs per
benchmark.  Collecting them is by far the most expensive step, so batches
are cached in-process (keyed by the configuration) and can optionally be
persisted on disk through the engine's content-addressed
:class:`repro.engine.ObservationCache` so that repeated CLI invocations
reuse earlier campaigns.  Execution itself is delegated to the campaign
orchestrator (:func:`repro.campaign.run_campaign` over the stage DAGs
declared in :mod:`repro.experiments.stages`, with the controller ``off``),
which routes every batch through :func:`repro.engine.collect_batch` —
campaigns can be collected on any backend with bit-identical results, and
a disk-cache entry written by one backend is a valid hit for all of them.

The collectors run the orchestrator with ``enforce_required=False``: an
all-censored batch is a legitimate *answer* for a table (the
censoring-aware formatting paths exist for it), whereas the ``campaign``
subcommand enforces the BUG-021 zero-observation guardrail.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Mapping

from repro.campaign.orchestrator import run_campaign
from repro.engine.backends import BatchExecutor
from repro.engine.progress import ProgressCallback
from repro.experiments.config import BENCHMARK_KEYS, SAT_KEY, ExperimentConfig
from repro.experiments.stages import campaign_stages
from repro.multiwalk.observations import RuntimeObservations
from repro.solvers.policies import POLICIES

__all__ = [
    "campaign_precollected",
    "collect_benchmark_observations",
    "collect_sat_observations",
    "collect_sat_policy_observations",
    "clear_observation_cache",
    "memoize_campaign",
]

#: In-process cache: (campaign kind, config fingerprint) -> key -> batch.
#: One dict for every observation kind, so adding a kind cannot forget the
#: cache-clearing path.  Deliberately ignores the backend: the engine
#: guarantees backend-invariant results, so a campaign collected anywhere
#: satisfies every caller.
_CACHE: dict[tuple, dict[str, RuntimeObservations]] = {}


def _config_fingerprint(config: ExperimentConfig) -> tuple:
    """Hashable identity of the config parts that affect the CSP campaigns."""
    return (
        "benchmarks",
        config.magic_square_n,
        config.all_interval_n,
        config.costas_n,
        config.n_sequential_runs,
        config.max_iterations,
        config.base_seed,
    )


def _sat_fingerprint(config: ExperimentConfig, kind: str = "sat") -> tuple:
    """Hashable identity of the config parts that affect the SAT campaigns."""
    return (
        kind,
        config.sat_n_variables,
        config.sat_clause_ratio,
        config.sat_k,
        config.sat_family,
        config.sat_policy,
        config.sat_dimacs,
        config.n_sequential_runs,
        config.max_iterations,
        config.base_seed,
    )


def clear_observation_cache() -> None:
    """Drop all cached campaigns, of every kind (mostly useful in tests)."""
    _CACHE.clear()


def campaign_precollected(config: ExperimentConfig) -> dict[str, RuntimeObservations]:
    """In-process memoised batches keyed by *stage key*.

    The warm-start mapping the ``campaign`` subcommand hands to the
    orchestrator (``precollected=``) so a CLI campaign in a process whose
    collectors already ran — the test-suite, a notebook — reuses those
    batches instead of re-executing stages.  Only classic full batches are
    memoised, so this applies to the ``off`` controller alone.
    """
    out: dict[str, RuntimeObservations] = {}
    bench = _CACHE.get(_config_fingerprint(config))
    if bench is not None:
        out.update(bench)  # benchmark keys are their stage keys
    sat_memo = _CACHE.get(_sat_fingerprint(config))
    if sat_memo is not None:
        out[SAT_KEY] = sat_memo[SAT_KEY]
    policies = _CACHE.get(_sat_fingerprint(config, kind="sat_policies"))
    if policies is not None:
        for policy in POLICIES:
            key = f"{SAT_KEY}/{policy}"
            if key not in policies:
                continue
            if policy == config.sat_policy:
                # The default policy's batch is the SAT stage itself.
                out.setdefault(SAT_KEY, policies[key])
            else:
                out[key] = policies[key]
    return out


def memoize_campaign(
    config: ExperimentConfig, observations: Mapping[str, RuntimeObservations]
) -> None:
    """Record a completed classic (controller-``off``) campaign in the memo.

    The inverse of :func:`campaign_precollected`: after the ``campaign``
    subcommand collects its batches through the orchestrator, this seeds
    the same in-process entries the plain collectors would have, so
    experiments run later in the process reuse them.
    """
    if all(key in observations for key in BENCHMARK_KEYS):
        _CACHE[_config_fingerprint(config)] = {
            key: observations[key] for key in BENCHMARK_KEYS
        }
    if SAT_KEY in observations:
        _CACHE[_sat_fingerprint(config)] = {SAT_KEY: observations[SAT_KEY]}
    policy_keys = [f"{SAT_KEY}/{policy}" for policy in POLICIES]
    if all(key in observations for key in policy_keys):
        _CACHE[_sat_fingerprint(config, kind="sat_policies")] = {
            key: observations[key] for key in policy_keys
        }


def collect_benchmark_observations(
    config: ExperimentConfig,
    *,
    cache_dir: str | Path | None = None,
    backend: str | BatchExecutor | None = None,
    workers: int | None = None,
    progress: ProgressCallback | None = None,
) -> Mapping[str, RuntimeObservations]:
    """Run (or reuse) the sequential campaigns for the three benchmarks.

    Parameters
    ----------
    config:
        Experiment configuration (instance sizes, run counts, seed).
    cache_dir:
        Optional directory for JSON persistence across processes.  Files are
        content-addressed by (solver, config, problem, seed), so changing
        any size/seed parameter triggers a fresh campaign.
    backend, workers:
        Execution backend and worker count forwarded to the engine
        (default: serial).
    progress:
        Optional structured progress callback forwarded to the engine.
    """
    fingerprint = _config_fingerprint(config)
    if fingerprint in _CACHE:
        return dict(_CACHE[fingerprint])

    report = run_campaign(
        campaign_stages(config, kinds=("benchmarks",)),
        controller="off",
        backend=backend,
        workers=workers,
        progress=progress,
        cache=cache_dir,
        enforce_required=False,
    )
    observations = report.observations()

    _CACHE[fingerprint] = dict(observations)
    return observations


def collect_sat_observations(
    config: ExperimentConfig,
    *,
    cache_dir: str | Path | None = None,
    backend: str | BatchExecutor | None = None,
    workers: int | None = None,
    progress: ProgressCallback | None = None,
) -> Mapping[str, RuntimeObservations]:
    """Run (or reuse) the sequential WalkSAT campaign on the configured SAT workload.

    The instance family (planted / uniform / DIMACS) and the flip policy
    come from ``config.sat_family`` / ``config.sat_policy``.  Same contract
    as :func:`collect_benchmark_observations` — engine-routed execution on
    any backend with bit-identical flip counts, in-process memoisation per
    configuration, and optional content-addressed disk persistence — for
    the SAT workload the paper's conclusion proposes.  Returns a
    single-entry mapping keyed by
    :data:`~repro.experiments.config.SAT_KEY` so SAT campaigns compose with
    the benchmark ones.
    """
    fingerprint = _sat_fingerprint(config)
    if fingerprint in _CACHE:
        return dict(_CACHE[fingerprint])

    report = run_campaign(
        campaign_stages(config, kinds=("sat",)),
        controller="off",
        backend=backend,
        workers=workers,
        progress=progress,
        cache=cache_dir,
        enforce_required=False,
    )
    observations = report.observations()

    _CACHE[fingerprint] = dict(observations)
    return dict(observations)


def collect_sat_policy_observations(
    config: ExperimentConfig,
    *,
    cache_dir: str | Path | None = None,
    backend: str | BatchExecutor | None = None,
    workers: int | None = None,
    progress: ProgressCallback | None = None,
) -> Mapping[str, RuntimeObservations]:
    """Run (or reuse) one WalkSAT campaign per registered flip policy.

    Every policy runs on the *same* configured instance with the *same*
    seed stream (``base_seed + 3``, the root the single-policy SAT
    campaign uses), so the batches differ only in the policy — the SAT
    analogue of comparing solvers on a fixed benchmark.  Keys are
    ``"SAT/<policy>"``; the configured policy's batch is the one
    :func:`collect_sat_observations` collects (identical solver, seed root
    and label), so it is *reused* here — through the in-process memo even
    without a disk cache — rather than executed a second time.
    """
    fingerprint = _sat_fingerprint(config, kind="sat_policies")
    if fingerprint in _CACHE:
        return dict(_CACHE[fingerprint])

    # The configured policy's batch is the one the single-policy SAT
    # campaign collects (identical solver, seed root and label); when that
    # collector already memoised it in-process, hand it to the orchestrator
    # pre-collected so a `campaign` invocation never runs the policy twice.
    precollected: dict[str, RuntimeObservations] = {}
    sat_memo = _CACHE.get(_sat_fingerprint(config))
    if sat_memo is not None:
        precollected[SAT_KEY] = sat_memo[SAT_KEY]
    report = run_campaign(
        campaign_stages(config, kinds=("sat_policies",)),
        controller="off",
        backend=backend,
        workers=workers,
        progress=progress,
        cache=cache_dir,
        enforce_required=False,
        precollected=precollected,
    )
    collected = report.observations()
    # Reorder to the registered policy order (the shared default-policy
    # batch sits at its policy position, not at its stage position).
    observations = {
        key: collected[key] for policy in POLICIES if (key := f"{SAT_KEY}/{policy}") in collected
    }

    _CACHE[fingerprint] = dict(observations)
    # The default policy's batch doubles as the single-policy campaign, so
    # memoise it under that fingerprint too (the reuse the plain collector
    # provided when it was called second).
    _CACHE.setdefault(
        _sat_fingerprint(config), {SAT_KEY: observations[f"{SAT_KEY}/{config.sat_policy}"]}
    )
    return dict(observations)


@dataclasses.dataclass(frozen=True)
class CampaignSummary:
    """Bookkeeping record describing a collected campaign (used by the CLI)."""

    config: ExperimentConfig
    n_runs: Mapping[str, int]
    success_rates: Mapping[str, float]

    @classmethod
    def from_observations(
        cls, config: ExperimentConfig, observations: Mapping[str, RuntimeObservations]
    ) -> "CampaignSummary":
        return cls(
            config=config,
            n_runs={key: obs.n_runs for key, obs in observations.items()},
            success_rates={key: obs.success_rate() for key, obs in observations.items()},
        )
