"""Collection and caching of the sequential solver campaigns.

Every solver-backed experiment (Tables 1–5, Figures 6–14) consumes the same
raw material: a batch of independent sequential Adaptive Search runs per
benchmark.  Collecting them is by far the most expensive step, so batches
are cached in-process (keyed by the configuration) and can optionally be
persisted on disk through the engine's content-addressed
:class:`repro.engine.ObservationCache` so that repeated CLI invocations
reuse earlier campaigns.  Execution itself is delegated to
:func:`repro.engine.collect_batch`, which means campaigns can be collected
on the serial, thread or process backend with bit-identical results — a
disk-cache entry written by one backend is a valid hit for all of them.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Mapping

from repro.engine.backends import BatchExecutor
from repro.engine.cache import ObservationCache
from repro.engine.core import collect_batch
from repro.engine.progress import ProgressCallback
from repro.experiments.config import BENCHMARK_KEYS, SAT_KEY, ExperimentConfig
from repro.multiwalk.observations import RuntimeObservations

__all__ = [
    "collect_benchmark_observations",
    "collect_sat_observations",
    "collect_sat_policy_observations",
    "clear_observation_cache",
]

#: In-process cache: (campaign kind, config fingerprint) -> key -> batch.
#: One dict for every observation kind, so adding a kind cannot forget the
#: cache-clearing path.  Deliberately ignores the backend: the engine
#: guarantees backend-invariant results, so a campaign collected anywhere
#: satisfies every caller.
_CACHE: dict[tuple, dict[str, RuntimeObservations]] = {}


def _config_fingerprint(config: ExperimentConfig) -> tuple:
    """Hashable identity of the config parts that affect the CSP campaigns."""
    return (
        "benchmarks",
        config.magic_square_n,
        config.all_interval_n,
        config.costas_n,
        config.n_sequential_runs,
        config.max_iterations,
        config.base_seed,
    )


def _sat_fingerprint(config: ExperimentConfig, kind: str = "sat") -> tuple:
    """Hashable identity of the config parts that affect the SAT campaigns."""
    return (
        kind,
        config.sat_n_variables,
        config.sat_clause_ratio,
        config.sat_k,
        config.sat_family,
        config.sat_policy,
        config.sat_dimacs,
        config.n_sequential_runs,
        config.max_iterations,
        config.base_seed,
    )


def clear_observation_cache() -> None:
    """Drop all cached campaigns, of every kind (mostly useful in tests)."""
    _CACHE.clear()


def collect_benchmark_observations(
    config: ExperimentConfig,
    *,
    cache_dir: str | Path | None = None,
    backend: str | BatchExecutor | None = None,
    workers: int | None = None,
    progress: ProgressCallback | None = None,
) -> Mapping[str, RuntimeObservations]:
    """Run (or reuse) the sequential campaigns for the three benchmarks.

    Parameters
    ----------
    config:
        Experiment configuration (instance sizes, run counts, seed).
    cache_dir:
        Optional directory for JSON persistence across processes.  Files are
        content-addressed by (solver, config, problem, seed), so changing
        any size/seed parameter triggers a fresh campaign.
    backend, workers:
        Execution backend and worker count forwarded to the engine
        (default: serial).
    progress:
        Optional structured progress callback forwarded to the engine.
    """
    fingerprint = _config_fingerprint(config)
    if fingerprint in _CACHE:
        return dict(_CACHE[fingerprint])

    disk_cache = ObservationCache(cache_dir) if cache_dir is not None else None

    benchmarks = config.benchmarks()
    observations: dict[str, RuntimeObservations] = {}
    for offset, key in enumerate(BENCHMARK_KEYS):
        spec = benchmarks[key]
        solver = spec.make_solver(config.max_iterations)
        observations[key] = collect_batch(
            solver,
            config.n_sequential_runs,
            base_seed=config.base_seed + offset,
            label=spec.label,
            backend=backend,
            workers=workers,
            progress=progress,
            cache=disk_cache,
        )

    _CACHE[fingerprint] = dict(observations)
    return observations


def collect_sat_observations(
    config: ExperimentConfig,
    *,
    cache_dir: str | Path | None = None,
    backend: str | BatchExecutor | None = None,
    workers: int | None = None,
    progress: ProgressCallback | None = None,
) -> Mapping[str, RuntimeObservations]:
    """Run (or reuse) the sequential WalkSAT campaign on the configured SAT workload.

    The instance family (planted / uniform / DIMACS) and the flip policy
    come from ``config.sat_family`` / ``config.sat_policy``.  Same contract
    as :func:`collect_benchmark_observations` — engine-routed execution on
    any backend with bit-identical flip counts, in-process memoisation per
    configuration, and optional content-addressed disk persistence — for
    the SAT workload the paper's conclusion proposes.  Returns a
    single-entry mapping keyed by
    :data:`~repro.experiments.config.SAT_KEY` so SAT campaigns compose with
    the benchmark ones.
    """
    fingerprint = _sat_fingerprint(config)
    if fingerprint in _CACHE:
        return dict(_CACHE[fingerprint])

    disk_cache = ObservationCache(cache_dir) if cache_dir is not None else None
    spec = config.sat_benchmark()
    solver = spec.make_solver(config.max_iterations)
    observations = collect_batch(
        solver,
        config.n_sequential_runs,
        # Offset past the three CSP benchmarks' seed roots (base_seed + 0..2).
        base_seed=config.base_seed + len(BENCHMARK_KEYS),
        label=spec.label,
        backend=backend,
        workers=workers,
        progress=progress,
        cache=disk_cache,
    )

    _CACHE[fingerprint] = {SAT_KEY: observations}
    return {SAT_KEY: observations}


def collect_sat_policy_observations(
    config: ExperimentConfig,
    *,
    cache_dir: str | Path | None = None,
    backend: str | BatchExecutor | None = None,
    workers: int | None = None,
    progress: ProgressCallback | None = None,
) -> Mapping[str, RuntimeObservations]:
    """Run (or reuse) one WalkSAT campaign per registered flip policy.

    Every policy runs on the *same* configured instance with the *same*
    seed stream (``base_seed + 3``, the root the single-policy SAT
    campaign uses), so the batches differ only in the policy — the SAT
    analogue of comparing solvers on a fixed benchmark.  Keys are
    ``"SAT/<policy>"``; the configured policy's batch is the one
    :func:`collect_sat_observations` collects (identical solver, seed root
    and label), so it is *reused* here — through the in-process memo even
    without a disk cache — rather than executed a second time.
    """
    from repro.solvers.policies import POLICIES

    fingerprint = _sat_fingerprint(config, kind="sat_policies")
    if fingerprint in _CACHE:
        return dict(_CACHE[fingerprint])

    disk_cache = ObservationCache(cache_dir) if cache_dir is not None else None
    observations: dict[str, RuntimeObservations] = {}
    for policy in POLICIES:
        if policy == config.sat_policy:
            # The single-policy campaign already covers this exact batch;
            # its collector memoises in-process and persists on disk, so a
            # `campaign` invocation never runs the default policy twice.
            observations[f"{SAT_KEY}/{policy}"] = collect_sat_observations(
                config,
                cache_dir=cache_dir,
                backend=backend,
                workers=workers,
                progress=progress,
            )[SAT_KEY]
            continue
        spec = config.sat_benchmark(policy=policy)
        solver = spec.make_solver(config.max_iterations)
        observations[f"{SAT_KEY}/{policy}"] = collect_batch(
            solver,
            config.n_sequential_runs,
            base_seed=config.base_seed + len(BENCHMARK_KEYS),
            label=spec.label,
            backend=backend,
            workers=workers,
            progress=progress,
            cache=disk_cache,
        )

    _CACHE[fingerprint] = dict(observations)
    return dict(observations)


@dataclasses.dataclass(frozen=True)
class CampaignSummary:
    """Bookkeeping record describing a collected campaign (used by the CLI)."""

    config: ExperimentConfig
    n_runs: Mapping[str, int]
    success_rates: Mapping[str, float]

    @classmethod
    def from_observations(
        cls, config: ExperimentConfig, observations: Mapping[str, RuntimeObservations]
    ) -> "CampaignSummary":
        return cls(
            config=config,
            n_runs={key: obs.n_runs for key, obs in observations.items()},
            success_rates={key: obs.success_rate() for key, obs in observations.items()},
        )
