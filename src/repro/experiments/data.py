"""Collection and caching of the sequential solver campaigns.

Every solver-backed experiment (Tables 1–5, Figures 6–14) consumes the same
raw material: a batch of independent sequential Adaptive Search runs per
benchmark.  Collecting them is by far the most expensive step, so batches
are cached in-process (keyed by the configuration) and can optionally be
persisted to / reloaded from JSON files so that repeated CLI invocations
reuse earlier campaigns.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Mapping

from repro.experiments.config import BENCHMARK_KEYS, ExperimentConfig
from repro.multiwalk.observations import RuntimeObservations
from repro.multiwalk.runner import run_sequential_batch

__all__ = ["collect_benchmark_observations", "clear_observation_cache"]

#: In-process cache: config fingerprint -> benchmark key -> observations.
_CACHE: dict[tuple, dict[str, RuntimeObservations]] = {}


def _config_fingerprint(config: ExperimentConfig) -> tuple:
    """Hashable identity of the parts of the config that affect the runs."""
    return (
        config.magic_square_n,
        config.all_interval_n,
        config.costas_n,
        config.n_sequential_runs,
        config.max_iterations,
        config.base_seed,
    )


def clear_observation_cache() -> None:
    """Drop all cached campaigns (mostly useful in tests)."""
    _CACHE.clear()


def _cache_file(cache_dir: Path, config: ExperimentConfig, key: str) -> Path:
    parts = "-".join(str(p) for p in _config_fingerprint(config))
    return cache_dir / f"observations-{key}-{parts}.json"


def collect_benchmark_observations(
    config: ExperimentConfig,
    *,
    cache_dir: str | Path | None = None,
) -> Mapping[str, RuntimeObservations]:
    """Run (or reuse) the sequential campaigns for the three benchmarks.

    Parameters
    ----------
    config:
        Experiment configuration (instance sizes, run counts, seed).
    cache_dir:
        Optional directory for JSON persistence across processes.  Files are
        keyed by the configuration fingerprint, so changing any size/seed
        parameter triggers a fresh campaign.
    """
    fingerprint = _config_fingerprint(config)
    if fingerprint in _CACHE:
        return dict(_CACHE[fingerprint])

    directory = Path(cache_dir) if cache_dir is not None else None
    if directory is not None:
        directory.mkdir(parents=True, exist_ok=True)

    benchmarks = config.benchmarks()
    observations: dict[str, RuntimeObservations] = {}
    for offset, key in enumerate(BENCHMARK_KEYS):
        spec = benchmarks[key]
        if directory is not None:
            path = _cache_file(directory, config, key)
            if path.exists():
                observations[key] = RuntimeObservations.load(path)
                continue
        solver = spec.make_solver(config.max_iterations)
        batch = run_sequential_batch(
            solver,
            config.n_sequential_runs,
            base_seed=config.base_seed + offset,
            label=spec.label,
        )
        observations[key] = batch
        if directory is not None:
            batch.save(_cache_file(directory, config, key))

    _CACHE[fingerprint] = dict(observations)
    return observations


@dataclasses.dataclass(frozen=True)
class CampaignSummary:
    """Bookkeeping record describing a collected campaign (used by the CLI)."""

    config: ExperimentConfig
    n_runs: Mapping[str, int]
    success_rates: Mapping[str, float]

    @classmethod
    def from_observations(
        cls, config: ExperimentConfig, observations: Mapping[str, RuntimeObservations]
    ) -> "CampaignSummary":
        return cls(
            config=config,
            n_runs={key: obs.n_runs for key, obs in observations.items()},
            success_rates={key: obs.success_rate() for key, obs in observations.items()},
        )
