"""Stage definitions of the experiment campaigns.

The observation collectors in :mod:`repro.experiments.data` used to be
three hand-rolled ``collect_batch`` loops; their campaigns are now
*declared* here as :class:`repro.campaign.StageSpec` DAGs and executed by
the orchestrator.  One stage per batch, with exactly the quota, seed root,
budget and label the plain collectors used — which is what keeps
``--controller off`` campaigns byte-identical to the pre-orchestrator ones
(same solvers, same seed streams, same disk-cache addresses).

The stage DAG for a full campaign:

* ``MS``, ``AI``, ``Costas`` — the three CSP benchmarks, independent.
* ``SAT`` — the configured WalkSAT workload; doubles as the default
  policy's row of the policy-family comparison (one stage, two emit
  keys), so the default policy never runs twice.
* ``SAT/<policy>`` — one stage per non-default flip policy, all declared
  ``after`` the ``SAT`` stage: they share its instance and seed stream,
  and the baseline lands first in every log and summary.

:data:`STAGE_KINDS` is the authoritative list of observation kinds; the
experiment registry re-exports it as ``OBSERVATION_KINDS``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.campaign.stages import StageSpec
from repro.experiments.config import BENCHMARK_KEYS, SAT_KEY, ExperimentConfig
from repro.solvers.policies import POLICIES

__all__ = ["STAGE_KINDS", "campaign_stages", "canonical_emit_order"]

#: Observation-campaign kinds a stage (or an experiment) can declare.
STAGE_KINDS: tuple[str, ...] = ("benchmarks", "sat", "sat_policies")


def campaign_stages(
    config: ExperimentConfig, kinds: Iterable[str] = STAGE_KINDS
) -> list[StageSpec]:
    """Build the stage DAG covering the requested observation kinds."""
    kinds = tuple(kinds)
    unknown = [kind for kind in kinds if kind not in STAGE_KINDS]
    if unknown:
        raise ValueError(f"unknown observation kinds {unknown}; expected {STAGE_KINDS}")

    stages: list[StageSpec] = []
    if "benchmarks" in kinds:
        benchmarks = config.benchmarks()
        for offset, key in enumerate(BENCHMARK_KEYS):
            spec = benchmarks[key]
            stages.append(
                StageSpec(
                    key=key,
                    label=spec.label,
                    kind="benchmarks",
                    make_solver=spec.make_solver,
                    quota=config.n_sequential_runs,
                    base_seed=config.base_seed + offset,
                    budget=config.max_iterations,
                    emit_keys=(key,),
                )
            )

    want_sat = "sat" in kinds
    want_policies = "sat_policies" in kinds
    if want_sat or want_policies:
        spec = config.sat_benchmark()
        emit = []
        if want_sat:
            emit.append(SAT_KEY)
        if want_policies:
            # The configured policy's row of the policy family is this very
            # batch: one stage, two emit keys, zero duplicate runs.
            emit.append(f"{SAT_KEY}/{config.sat_policy}")
        stages.append(
            StageSpec(
                key=SAT_KEY,
                label=spec.label,
                kind="sat",
                make_solver=spec.make_solver,
                quota=config.n_sequential_runs,
                # Offset past the three CSP benchmarks' seed roots (+0..2).
                base_seed=config.base_seed + len(BENCHMARK_KEYS),
                budget=config.max_iterations,
                emit_keys=tuple(emit),
                supports_cutoff=True,
            )
        )
    if want_policies:
        for policy in POLICIES:
            if policy == config.sat_policy:
                continue
            policy_spec = config.sat_benchmark(policy=policy)
            stages.append(
                StageSpec(
                    key=f"{SAT_KEY}/{policy}",
                    label=policy_spec.label,
                    kind="sat_policies",
                    make_solver=policy_spec.make_solver,
                    quota=config.n_sequential_runs,
                    # Same seed stream as the SAT stage: batches differ only
                    # in the flip policy, the SAT analogue of comparing
                    # solvers on a fixed benchmark.
                    base_seed=config.base_seed + len(BENCHMARK_KEYS),
                    budget=config.max_iterations,
                    emit_keys=(f"{SAT_KEY}/{policy}",),
                    after=(SAT_KEY,),
                    supports_cutoff=True,
                )
            )
    return stages


def canonical_emit_order(stages: Sequence[StageSpec]) -> list[str]:
    """Emit keys in the order every campaign summary has always printed them.

    CSP benchmarks first (table order), then the SAT workload, then the
    policy family in :data:`~repro.solvers.policies.POLICIES` order — the
    configured policy's shared batch included at its policy position, not
    at its stage position.
    """
    emitted = {key for stage in stages for key in stage.emit_keys}
    order = [key for key in (*BENCHMARK_KEYS, SAT_KEY) if key in emitted]
    order.extend(
        key for policy in POLICIES if (key := f"{SAT_KEY}/{policy}") in emitted
    )
    leftovers = sorted(emitted.difference(order))  # future kinds: stable tail
    return order + leftovers
