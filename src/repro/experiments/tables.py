"""Tables 1–5 of the paper.

* Table 1 — sequential execution times (min / mean / median / max).
* Table 2 — sequential iteration counts (same statistics).
* Table 3 — measured multi-walk speed-ups w.r.t. time on 16…256 cores.
* Table 4 — measured multi-walk speed-ups w.r.t. iterations.
* Table 5 — measured vs predicted speed-ups (the paper's headline result).

"Measured" speed-ups come from the simulated multi-walk (block minima over
independent sequential runs — see DESIGN.md §4); "predicted" speed-ups come
from the fitted-distribution model of Section 3 using the same family per
benchmark as the paper (lognormal for MAGIC-SQUARE, shifted exponential for
ALL-INTERVAL, non-shifted exponential for COSTAS).
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

import numpy as np

from repro.core.prediction import PredictionResult, predict_speedup_curve
from repro.experiments.config import BENCHMARK_KEYS, ExperimentConfig
from repro.experiments.data import collect_benchmark_observations
from repro.experiments.report import format_table
from repro.multiwalk.observations import RuntimeObservations
from repro.multiwalk.simulate import MultiwalkMeasurement, simulate_multiwalk_speedups
from repro.stats.descriptive import RuntimeSummary, summarize

__all__ = [
    "PredictionComparisonTable",
    "SequentialSummaryTable",
    "SpeedupTable",
    "table1_sequential_times",
    "table2_sequential_iterations",
    "table3_time_speedups",
    "table4_iteration_speedups",
    "table5_prediction_comparison",
]


# ----------------------------------------------------------------------
# Tables 1 and 2 — sequential statistics
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class SequentialSummaryTable:
    """Min/mean/median/max of the sequential runs, one row per benchmark."""

    title: str
    measure: str
    labels: Mapping[str, str]
    summaries: Mapping[str, RuntimeSummary]

    def rows(self) -> list[list[object]]:
        out: list[list[object]] = []
        for key in BENCHMARK_KEYS:
            summary = self.summaries[key]
            out.append(
                [self.labels[key], summary.minimum, summary.mean, summary.median, summary.maximum]
            )
        return out

    def format(self) -> str:
        precision = "{:.2f}" if self.measure == "time" else "{:,.0f}"
        return format_table(
            ["Problem", "Min", "Mean", "Median", "Max"],
            self.rows(),
            title=self.title,
            float_format=precision,
        )


def _summary_table(
    config: ExperimentConfig,
    observations: Mapping[str, RuntimeObservations],
    measure: str,
    title: str,
) -> SequentialSummaryTable:
    labels = {key: observations[key].label for key in BENCHMARK_KEYS}
    summaries = {key: summarize(observations[key].values(measure)) for key in BENCHMARK_KEYS}
    return SequentialSummaryTable(title=title, measure=measure, labels=labels, summaries=summaries)


def table1_sequential_times(
    config: ExperimentConfig | None = None,
    observations: Mapping[str, RuntimeObservations] | None = None,
) -> SequentialSummaryTable:
    """Table 1: sequential execution times (seconds)."""
    config = config or ExperimentConfig.quick()
    observations = observations or collect_benchmark_observations(config)
    return _summary_table(config, observations, "time", "Table 1. Sequential execution times (s)")


def table2_sequential_iterations(
    config: ExperimentConfig | None = None,
    observations: Mapping[str, RuntimeObservations] | None = None,
) -> SequentialSummaryTable:
    """Table 2: sequential number of iterations."""
    config = config or ExperimentConfig.quick()
    observations = observations or collect_benchmark_observations(config)
    return _summary_table(
        config, observations, "iterations", "Table 2. Sequential number of iterations"
    )


# ----------------------------------------------------------------------
# Tables 3 and 4 — measured multi-walk speed-ups
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class SpeedupTable:
    """Measured speed-ups per benchmark and core count (Tables 3 and 4)."""

    title: str
    measure: str
    cores: tuple[int, ...]
    sequential_reference: Mapping[str, float]
    measurements: Mapping[str, MultiwalkMeasurement]

    def speedup(self, key: str, n_cores: int) -> float:
        return self.measurements[key].speedup(n_cores)

    def rows(self) -> list[list[object]]:
        out: list[list[object]] = []
        for key in BENCHMARK_KEYS:
            measurement = self.measurements[key]
            row: list[object] = [measurement.label, self.sequential_reference[key]]
            row.extend(measurement.speedup(c) for c in self.cores)
            out.append(row)
        return out

    def format(self) -> str:
        reference_header = "1-core time (s)" if self.measure == "time" else "1-core iterations"
        headers = ["Problem", reference_header] + [f"k={c}" for c in self.cores]
        return format_table(headers, self.rows(), title=self.title, float_format="{:,.1f}")


def _speedup_table(
    config: ExperimentConfig,
    observations: Mapping[str, RuntimeObservations],
    measure: str,
    title: str,
) -> SpeedupTable:
    rng = np.random.default_rng(config.base_seed + 977)
    measurements = {}
    reference = {}
    for key in BENCHMARK_KEYS:
        values = observations[key].values(measure)
        reference[key] = float(values.mean())
        measurements[key] = simulate_multiwalk_speedups(
            observations[key],
            config.cores,
            measure=measure,
            n_parallel_runs=config.n_parallel_runs,
            rng=rng,
        )
    return SpeedupTable(
        title=title,
        measure=measure,
        cores=tuple(config.cores),
        sequential_reference=reference,
        measurements=measurements,
    )


def table3_time_speedups(
    config: ExperimentConfig | None = None,
    observations: Mapping[str, RuntimeObservations] | None = None,
) -> SpeedupTable:
    """Table 3: measured speed-ups with respect to sequential time."""
    config = config or ExperimentConfig.quick()
    observations = observations or collect_benchmark_observations(config)
    return _speedup_table(
        config, observations, "time", "Table 3. Speed-ups with respect to sequential time"
    )


def table4_iteration_speedups(
    config: ExperimentConfig | None = None,
    observations: Mapping[str, RuntimeObservations] | None = None,
) -> SpeedupTable:
    """Table 4: measured speed-ups with respect to sequential iterations."""
    config = config or ExperimentConfig.quick()
    observations = observations or collect_benchmark_observations(config)
    return _speedup_table(
        config,
        observations,
        "iterations",
        "Table 4. Speed-ups with respect to sequential number of iterations",
    )


# ----------------------------------------------------------------------
# Table 5 — predicted vs measured
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class PredictionComparisonTable:
    """Experimental (simulated multi-walk) vs predicted speed-ups (Table 5)."""

    cores: tuple[int, ...]
    labels: Mapping[str, str]
    experimental: Mapping[str, MultiwalkMeasurement]
    predictions: Mapping[str, PredictionResult]

    def relative_error(self, key: str, n_cores: int) -> float:
        """|predicted - measured| / measured for one benchmark/core count."""
        measured = self.experimental[key].speedup(n_cores)
        predicted = self.predictions[key].speedup(n_cores)
        if measured == 0.0:
            return float("inf")
        return abs(predicted - measured) / measured

    def max_relative_error(self, key: str) -> float:
        return max(self.relative_error(key, c) for c in self.cores)

    def rows(self) -> list[list[object]]:
        out: list[list[object]] = []
        for key in BENCHMARK_KEYS:
            exp_row: list[object] = [self.labels[key], "experimental"]
            exp_row.extend(self.experimental[key].speedup(c) for c in self.cores)
            out.append(exp_row)
            pred_row: list[object] = ["", "predicted"]
            pred_row.extend(self.predictions[key].speedup(c) for c in self.cores)
            out.append(pred_row)
        return out

    def format(self) -> str:
        headers = ["Problem", "series"] + [f"k={c}" for c in self.cores]
        body = format_table(
            headers,
            self.rows(),
            title="Table 5. Comparison: experimental and predicted speed-ups",
            float_format="{:.1f}",
        )
        families = ", ".join(
            f"{self.labels[key]}: {self.predictions[key].family}" for key in BENCHMARK_KEYS
        )
        return body + f"\nfitted families: {families}"


def table5_prediction_comparison(
    config: ExperimentConfig | None = None,
    observations: Mapping[str, RuntimeObservations] | None = None,
    *,
    cores: Sequence[int] | None = None,
) -> PredictionComparisonTable:
    """Table 5: predicted speed-ups (Section 6 fits) vs measured speed-ups."""
    config = config or ExperimentConfig.quick()
    observations = observations or collect_benchmark_observations(config)
    core_list = tuple(int(c) for c in (cores or config.cores))

    experimental_table = _speedup_table(config, observations, "iterations", "")
    predictions: dict[str, PredictionResult] = {}
    for key in BENCHMARK_KEYS:
        values = observations[key].values("iterations")
        predictions[key] = predict_speedup_curve(
            values,
            core_list,
            family=config.paper_family(key),
            shift_rule=config.paper_shift_rule(key),
        )
    labels = {key: observations[key].label for key in BENCHMARK_KEYS}
    return PredictionComparisonTable(
        cores=core_list,
        labels=labels,
        experimental=experimental_table.measurements,
        predictions=predictions,
    )
