"""Experiment configuration: instance sizes, run counts, core counts.

The paper's evaluation uses MAGIC-SQUARE 200x200, ALL-INTERVAL 700 and
COSTAS 21 with ~650 sequential runs and 50 parallel runs per core count on a
256-core cluster.  Those instances need cluster-months of C code; this
reproduction runs the same algorithm on scaled-down instances (the paper
itself argues the distribution *shape* is stable across instance sizes for a
given problem, which is what the prediction relies on).  Four profiles are
provided:

* ``tiny``  — smallest meaningful sizes, used by the fast unit tests.
* ``quick`` — sized so the whole table/figure suite runs in minutes on a
  single laptop core (used by the test-suite and the benchmark harness).
* ``medium`` — the nightly-CI campaign profile: larger than ``quick`` but
  bounded by a hosted-runner budget.
* ``full``  — larger instances and more runs for a closer reproduction.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Mapping

import numpy as np

from repro.csp.permutation import PermutationProblem
from repro.csp.problems import AllIntervalProblem, CostasArrayProblem, MagicSquareProblem
from repro.sat.cnf import CNFFormula
from repro.sat.dimacs import DEFAULT_INSTANCE, bundled_instance_path, load_bundled_instance
from repro.sat.generators import (
    clause_count_for_ratio,
    random_ksat,
    random_planted_ksat,
)
from repro.solvers.adaptive_search import AdaptiveSearch, AdaptiveSearchConfig
from repro.solvers.policies import validate_policy
from repro.solvers.walksat import WalkSAT, WalkSATConfig

__all__ = [
    "BENCHMARK_KEYS",
    "BenchmarkSpec",
    "ExperimentConfig",
    "SAT_FAMILIES",
    "SAT_KEY",
    "SATBenchmarkSpec",
]

#: Order in which the three benchmarks appear in every paper table.
BENCHMARK_KEYS: tuple[str, ...] = ("MS", "AI", "Costas")

#: Key of the SAT workload (the paper-conclusion extension) in campaign maps.
SAT_KEY: str = "SAT"

#: Instance families the SAT workload can draw from (``sat_family``).
SAT_FAMILIES: tuple[str, ...] = ("planted", "uniform", "dimacs")


@dataclasses.dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark row: problem instance plus its display label."""

    key: str
    label: str
    problem_factory: Callable[[], PermutationProblem]

    def make_solver(self, max_iterations: int) -> AdaptiveSearch:
        """Instantiate the Adaptive Search solver for this benchmark."""
        return AdaptiveSearch(
            self.problem_factory(),
            AdaptiveSearchConfig(max_iterations=max_iterations),
        )


@dataclasses.dataclass(frozen=True)
class SATBenchmarkSpec:
    """One SAT workload row: a CNF instance family plus its display label.

    Mirrors :class:`BenchmarkSpec` for the WalkSAT extension the paper's
    conclusion proposes; the formula factory is deterministic in the
    experiment seed (or a fixed DIMACS file), so repeated campaigns hit
    the engine's content-addressed observation cache.
    """

    key: str
    label: str
    formula_factory: Callable[[], CNFFormula]
    noise: float = 0.5
    policy: str = "walksat"

    def make_solver(self, max_flips: int) -> WalkSAT:
        """Instantiate the configured WalkSAT-family solver for this instance."""
        return WalkSAT(
            self.formula_factory(),
            WalkSATConfig(max_flips=max_flips, noise=self.noise, policy=self.policy),
        )


@dataclasses.dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment.

    Attributes
    ----------
    magic_square_n, all_interval_n, costas_n:
        Instance sizes of the three benchmarks (the paper uses 200, 700, 21).
    sat_n_variables, sat_clause_ratio, sat_k:
        Random k-SAT instance of the WalkSAT workload (the SAT extension
        the paper's conclusion proposes); the default ratio 4.2 sits just
        under the 3-SAT phase transition (~4.27), where runtimes are
        heavy-tailed.  Ignored by the ``"dimacs"`` family, which loads a
        fixed checked-in instance instead.
    sat_family:
        Instance family of the SAT workload: ``"planted"`` (satisfiable by
        construction, the default), ``"uniform"`` (uniform draw at
        ``sat_clause_ratio`` — satisfiability not guaranteed, so campaigns
        are censoring-heavy and flow through the censoring-aware fits) or
        ``"dimacs"`` (a bundled DIMACS file, see ``sat_dimacs``).
    sat_policy:
        Flip-picking policy of the SAT workload solver — one of
        :data:`repro.solvers.policies.POLICIES` (``"walksat"``,
        ``"novelty"``, ``"novelty+"``, ``"adaptive"``).
    sat_dimacs:
        Name of the bundled DIMACS instance used by the ``"dimacs"``
        family (see :func:`repro.sat.dimacs.bundled_instance_names`).
    n_sequential_runs:
        Independent sequential runs collected per benchmark (paper: ~650).
    n_parallel_runs:
        Simulated parallel executions averaged per core count (paper: 50).
    cores:
        Core counts evaluated in the speed-up tables (paper: 16…256).
    extended_cores:
        Core counts for the Figure 14 extension (paper: up to 8192).
    max_iterations:
        Per-run iteration budget of the solver (censoring threshold).
    base_seed:
        Root seed from which all per-run seeds are derived.
    """

    magic_square_n: int = 4
    all_interval_n: int = 12
    costas_n: int = 10
    sat_n_variables: int = 50
    sat_clause_ratio: float = 4.2
    sat_k: int = 3
    sat_family: str = "planted"
    sat_policy: str = "walksat"
    sat_dimacs: str = DEFAULT_INSTANCE
    n_sequential_runs: int = 80
    n_parallel_runs: int = 50
    cores: tuple[int, ...] = (16, 32, 64, 128, 256)
    extended_cores: tuple[int, ...] = (512, 1024, 2048, 4096, 8192)
    max_iterations: int = 200_000
    base_seed: int = 20130813  # ICPP 2013 nod; any fixed value works

    def __post_init__(self) -> None:
        if self.n_sequential_runs < 2:
            raise ValueError("need at least two sequential runs")
        if self.n_parallel_runs < 1:
            raise ValueError("need at least one parallel run")
        if not self.cores or any(c < 1 for c in self.cores):
            raise ValueError(f"core counts must be positive, got {self.cores}")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be positive")
        if self.sat_k < 1:
            raise ValueError(f"sat_k must be >= 1, got {self.sat_k}")
        if self.sat_n_variables < self.sat_k:
            raise ValueError(
                f"sat_n_variables must be >= sat_k={self.sat_k}, got {self.sat_n_variables}"
            )
        if self.sat_clause_ratio <= 0.0:
            raise ValueError(f"sat_clause_ratio must be positive, got {self.sat_clause_ratio}")
        if self.sat_family not in SAT_FAMILIES:
            raise ValueError(
                f"sat_family must be one of {SAT_FAMILIES}, got {self.sat_family!r}"
            )
        validate_policy(self.sat_policy)
        if self.sat_family == "dimacs":
            # Fail at configuration time, not minutes into a campaign when
            # the SAT kind finally builds its formula.
            bundled_instance_path(self.sat_dimacs)

    # ------------------------------------------------------------------
    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """Laptop/CI profile: small instances, enough runs for stable fits."""
        return cls()

    @classmethod
    def medium(cls) -> "ExperimentConfig":
        """Nightly-CI profile: between ``quick`` and ``full``.

        Sized so a full campaign plus every table/figure finishes within a
        hosted-runner budget (the nightly workflow fails the campaign step
        at 15 minutes) while stressing the heavy-tailed regime — one more
        notch toward the ROADMAP's paper-scale instances now that every
        hot path is incremental (was MS 4 / AI 14 / Costas 11 / SAT 75;
        measured on the 1-core dev container the 200-run campaigns cost
        ~90 s for MS 6, ~280 s for AI 16, ~50 s for Costas 13 and a few
        seconds for SAT 150 across all four policies, ≈ 8 minutes total).
        """
        return cls(
            magic_square_n=6,
            all_interval_n=16,
            costas_n=13,
            sat_n_variables=150,
            n_sequential_runs=200,
            n_parallel_runs=50,
            max_iterations=500_000,
        )

    @classmethod
    def full(cls) -> "ExperimentConfig":
        """Longer campaign: larger instances, paper-scale run counts.

        Kept a strict notch above ``medium`` (which the nightly CI grew to
        MS 6 / AI 16 / Costas 13 / SAT 150) on every axis, with the flip
        budget raised to keep the larger instances solvable-not-censored.
        """
        return cls(
            magic_square_n=7,
            all_interval_n=18,
            costas_n=14,
            sat_n_variables=200,
            n_sequential_runs=400,
            n_parallel_runs=50,
            max_iterations=2_000_000,
        )

    @classmethod
    def tiny(cls) -> "ExperimentConfig":
        """Smallest meaningful profile, used by the fast unit tests."""
        return cls(
            magic_square_n=3,
            all_interval_n=8,
            costas_n=7,
            sat_n_variables=25,
            n_sequential_runs=30,
            n_parallel_runs=20,
            cores=(4, 16, 64),
            extended_cores=(128, 256),
            max_iterations=50_000,
        )

    # ------------------------------------------------------------------
    def benchmarks(self) -> Mapping[str, BenchmarkSpec]:
        """The three paper benchmarks at this configuration's sizes."""
        ms_n = self.magic_square_n
        ai_n = self.all_interval_n
        costas_n = self.costas_n
        return {
            "MS": BenchmarkSpec(
                key="MS",
                label=f"MS {ms_n}x{ms_n}",
                problem_factory=lambda: MagicSquareProblem(ms_n),
            ),
            "AI": BenchmarkSpec(
                key="AI",
                label=f"AI {ai_n}",
                problem_factory=lambda: AllIntervalProblem(ai_n),
            ),
            "Costas": BenchmarkSpec(
                key="Costas",
                label=f"Costas {costas_n}",
                problem_factory=lambda: CostasArrayProblem(costas_n),
            ),
        }

    def sat_benchmark(self, policy: str | None = None) -> SATBenchmarkSpec:
        """The configured SAT workload (family × policy) at this size.

        Generated instances are drawn deterministically from the
        configuration's seed (independent of the per-run seed streams) and
        the DIMACS family loads a fixed checked-in file, so two
        invocations with the same configuration solve the *same* formula —
        which is what makes SAT campaigns cacheable by content address
        (and bit-comparable across hosts and backends).

        ``policy`` overrides ``sat_policy`` — used by the policy-family
        campaign, which collects one batch per registered policy.
        """
        policy = self.sat_policy if policy is None else policy
        n = self.sat_n_variables
        n_clauses = clause_count_for_ratio(n, self.sat_clause_ratio)
        k = self.sat_k

        if self.sat_family == "planted":
            # Distinct root: the instance draw must not correlate with runs.
            instance_seed = (self.base_seed, 0x5A7)

            def formula_factory() -> CNFFormula:
                rng = np.random.default_rng(instance_seed)
                formula, _planted = random_planted_ksat(n, n_clauses, k, rng=rng)
                return formula

            label = f"{k}-SAT {n}@{self.sat_clause_ratio:g}"
        elif self.sat_family == "uniform":
            # Different root from the planted draw so the two families never
            # share an instance even at identical sizes.  The constant was
            # picked (once, offline) so the default profiles' draws at the
            # default base seed are satisfiable-but-hard: a satisfiable
            # instance keeps ``sat_portfolio`` meaningful while the heavy
            # tail still censors runs at tight budgets (nearby constants
            # give unsatisfiable draws at n=50 or n=150).
            instance_seed = (self.base_seed, 0x5AA)

            def formula_factory() -> CNFFormula:
                rng = np.random.default_rng(instance_seed)
                return random_ksat(n, n_clauses, k, rng=rng)

            label = f"uniform {k}-SAT {n}@{self.sat_clause_ratio:g}"
        else:  # "dimacs" (family and instance name validated in __post_init__)
            name = self.sat_dimacs

            def formula_factory() -> CNFFormula:
                return load_bundled_instance(name)

            label = f"dimacs {name}"

        if policy != "walksat":
            label = f"{label} [{policy}]"
        return SATBenchmarkSpec(
            key=SAT_KEY,
            label=label,
            formula_factory=formula_factory,
            policy=policy,
        )

    #: Distribution family the paper fits to each benchmark (Section 6).
    PAPER_FAMILIES: Mapping[str, str] = dataclasses.field(
        default_factory=lambda: {
            "MS": "shifted_lognormal",
            "AI": "shifted_exponential",
            "Costas": "shifted_exponential",
        }
    )

    #: Shift rule the paper applies to each benchmark (Section 6).
    PAPER_SHIFT_RULES: Mapping[str, str] = dataclasses.field(
        default_factory=lambda: {
            "MS": "min",
            "AI": "min",
            "Costas": "zero_if_negligible",
        }
    )

    def paper_family(self, key: str) -> str:
        """Family the paper uses for benchmark ``key``."""
        return self.PAPER_FAMILIES[key]

    def paper_shift_rule(self, key: str) -> str:
        """Shift rule the paper uses for benchmark ``key``."""
        return self.PAPER_SHIFT_RULES[key]
