"""Experiment configuration: instance sizes, run counts, core counts.

The paper's evaluation uses MAGIC-SQUARE 200x200, ALL-INTERVAL 700 and
COSTAS 21 with ~650 sequential runs and 50 parallel runs per core count on a
256-core cluster.  Those instances need cluster-months of C code; this
reproduction runs the same algorithm on scaled-down instances (the paper
itself argues the distribution *shape* is stable across instance sizes for a
given problem, which is what the prediction relies on).  Four profiles are
provided:

* ``tiny``  — smallest meaningful sizes, used by the fast unit tests.
* ``quick`` — sized so the whole table/figure suite runs in minutes on a
  single laptop core (used by the test-suite and the benchmark harness).
* ``medium`` — the nightly-CI campaign profile: larger than ``quick`` but
  bounded by a hosted-runner budget.
* ``full``  — larger instances and more runs for a closer reproduction.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Mapping

import numpy as np

from repro.csp.permutation import PermutationProblem
from repro.csp.problems import AllIntervalProblem, CostasArrayProblem, MagicSquareProblem
from repro.sat.cnf import CNFFormula
from repro.sat.generators import random_planted_ksat
from repro.solvers.adaptive_search import AdaptiveSearch, AdaptiveSearchConfig
from repro.solvers.walksat import WalkSAT, WalkSATConfig

__all__ = ["BENCHMARK_KEYS", "BenchmarkSpec", "ExperimentConfig", "SAT_KEY", "SATBenchmarkSpec"]

#: Order in which the three benchmarks appear in every paper table.
BENCHMARK_KEYS: tuple[str, ...] = ("MS", "AI", "Costas")

#: Key of the SAT workload (the paper-conclusion extension) in campaign maps.
SAT_KEY: str = "SAT"


@dataclasses.dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark row: problem instance plus its display label."""

    key: str
    label: str
    problem_factory: Callable[[], PermutationProblem]

    def make_solver(self, max_iterations: int) -> AdaptiveSearch:
        """Instantiate the Adaptive Search solver for this benchmark."""
        return AdaptiveSearch(
            self.problem_factory(),
            AdaptiveSearchConfig(max_iterations=max_iterations),
        )


@dataclasses.dataclass(frozen=True)
class SATBenchmarkSpec:
    """The SAT workload row: planted k-SAT instance plus its display label.

    Mirrors :class:`BenchmarkSpec` for the WalkSAT extension the paper's
    conclusion proposes; the formula factory is deterministic in the
    experiment seed, so repeated campaigns hit the engine's
    content-addressed observation cache.
    """

    key: str
    label: str
    formula_factory: Callable[[], CNFFormula]
    noise: float = 0.5

    def make_solver(self, max_flips: int) -> WalkSAT:
        """Instantiate the WalkSAT solver for this instance."""
        return WalkSAT(
            self.formula_factory(),
            WalkSATConfig(max_flips=max_flips, noise=self.noise),
        )


@dataclasses.dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment.

    Attributes
    ----------
    magic_square_n, all_interval_n, costas_n:
        Instance sizes of the three benchmarks (the paper uses 200, 700, 21).
    sat_n_variables, sat_clause_ratio, sat_k:
        Planted random k-SAT instance of the WalkSAT workload (the SAT
        extension the paper's conclusion proposes); the default ratio 4.2
        sits just under the 3-SAT phase transition (~4.27), where runtimes
        are heavy-tailed.
    n_sequential_runs:
        Independent sequential runs collected per benchmark (paper: ~650).
    n_parallel_runs:
        Simulated parallel executions averaged per core count (paper: 50).
    cores:
        Core counts evaluated in the speed-up tables (paper: 16…256).
    extended_cores:
        Core counts for the Figure 14 extension (paper: up to 8192).
    max_iterations:
        Per-run iteration budget of the solver (censoring threshold).
    base_seed:
        Root seed from which all per-run seeds are derived.
    """

    magic_square_n: int = 4
    all_interval_n: int = 12
    costas_n: int = 10
    sat_n_variables: int = 50
    sat_clause_ratio: float = 4.2
    sat_k: int = 3
    n_sequential_runs: int = 80
    n_parallel_runs: int = 50
    cores: tuple[int, ...] = (16, 32, 64, 128, 256)
    extended_cores: tuple[int, ...] = (512, 1024, 2048, 4096, 8192)
    max_iterations: int = 200_000
    base_seed: int = 20130813  # ICPP 2013 nod; any fixed value works

    def __post_init__(self) -> None:
        if self.n_sequential_runs < 2:
            raise ValueError("need at least two sequential runs")
        if self.n_parallel_runs < 1:
            raise ValueError("need at least one parallel run")
        if not self.cores or any(c < 1 for c in self.cores):
            raise ValueError(f"core counts must be positive, got {self.cores}")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be positive")
        if self.sat_k < 1:
            raise ValueError(f"sat_k must be >= 1, got {self.sat_k}")
        if self.sat_n_variables < self.sat_k:
            raise ValueError(
                f"sat_n_variables must be >= sat_k={self.sat_k}, got {self.sat_n_variables}"
            )
        if self.sat_clause_ratio <= 0.0:
            raise ValueError(f"sat_clause_ratio must be positive, got {self.sat_clause_ratio}")

    # ------------------------------------------------------------------
    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """Laptop/CI profile: small instances, enough runs for stable fits."""
        return cls()

    @classmethod
    def medium(cls) -> "ExperimentConfig":
        """Nightly-CI profile: between ``quick`` and ``full``.

        Sized so a full campaign plus every table/figure finishes within a
        hosted-runner budget while still stressing the heavy-tailed regime —
        the first step toward the ROADMAP's paper-scale instances in CI.
        """
        return cls(
            magic_square_n=4,
            all_interval_n=14,
            costas_n=11,
            sat_n_variables=75,
            n_sequential_runs=200,
            n_parallel_runs=50,
            max_iterations=500_000,
        )

    @classmethod
    def full(cls) -> "ExperimentConfig":
        """Longer campaign: larger instances, paper-scale run counts."""
        return cls(
            magic_square_n=5,
            all_interval_n=16,
            costas_n=12,
            sat_n_variables=100,
            n_sequential_runs=400,
            n_parallel_runs=50,
            max_iterations=2_000_000,
        )

    @classmethod
    def tiny(cls) -> "ExperimentConfig":
        """Smallest meaningful profile, used by the fast unit tests."""
        return cls(
            magic_square_n=3,
            all_interval_n=8,
            costas_n=7,
            sat_n_variables=25,
            n_sequential_runs=30,
            n_parallel_runs=20,
            cores=(4, 16, 64),
            extended_cores=(128, 256),
            max_iterations=50_000,
        )

    # ------------------------------------------------------------------
    def benchmarks(self) -> Mapping[str, BenchmarkSpec]:
        """The three paper benchmarks at this configuration's sizes."""
        ms_n = self.magic_square_n
        ai_n = self.all_interval_n
        costas_n = self.costas_n
        return {
            "MS": BenchmarkSpec(
                key="MS",
                label=f"MS {ms_n}x{ms_n}",
                problem_factory=lambda: MagicSquareProblem(ms_n),
            ),
            "AI": BenchmarkSpec(
                key="AI",
                label=f"AI {ai_n}",
                problem_factory=lambda: AllIntervalProblem(ai_n),
            ),
            "Costas": BenchmarkSpec(
                key="Costas",
                label=f"Costas {costas_n}",
                problem_factory=lambda: CostasArrayProblem(costas_n),
            ),
        }

    def sat_benchmark(self) -> SATBenchmarkSpec:
        """The planted 3-SAT WalkSAT workload at this configuration's size.

        The instance is drawn deterministically from the configuration's
        seed (independent of the per-run seed streams), so two invocations
        with the same configuration solve the *same* formula — which is
        what makes SAT campaigns cacheable by content address.
        """
        n = self.sat_n_variables
        n_clauses = max(1, int(round(self.sat_clause_ratio * n)))
        k = self.sat_k
        instance_seed = (self.base_seed, 0x5A7)  # distinct root: instance, not runs

        def formula_factory() -> CNFFormula:
            rng = np.random.default_rng(instance_seed)
            formula, _planted = random_planted_ksat(n, n_clauses, k, rng=rng)
            return formula

        return SATBenchmarkSpec(
            key=SAT_KEY,
            label=f"{k}-SAT {n}@{self.sat_clause_ratio:g}",
            formula_factory=formula_factory,
        )

    #: Distribution family the paper fits to each benchmark (Section 6).
    PAPER_FAMILIES: Mapping[str, str] = dataclasses.field(
        default_factory=lambda: {
            "MS": "shifted_lognormal",
            "AI": "shifted_exponential",
            "Costas": "shifted_exponential",
        }
    )

    #: Shift rule the paper applies to each benchmark (Section 6).
    PAPER_SHIFT_RULES: Mapping[str, str] = dataclasses.field(
        default_factory=lambda: {
            "MS": "min",
            "AI": "min",
            "Costas": "zero_if_negligible",
        }
    )

    def paper_family(self, key: str) -> str:
        """Family the paper uses for benchmark ``key``."""
        return self.PAPER_FAMILIES[key]

    def paper_shift_rule(self, key: str) -> str:
        """Shift rule the paper uses for benchmark ``key``."""
        return self.PAPER_SHIFT_RULES[key]
