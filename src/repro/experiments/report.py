"""Plain-text table and series formatting shared by all experiments.

The harness has to *print the same rows/series the paper reports* without a
plotting stack, so every experiment result carries simple tabular data and
uses these helpers to render aligned text tables and ASCII curves.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_format: str = "{:.1f}",
) -> str:
    """Render a list of rows as an aligned plain-text table."""
    rendered_rows: list[list[str]] = []
    for row in rows:
        rendered: list[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    title: str | None = None,
    x_label: str = "cores",
    width: int = 60,
) -> str:
    """Render one or more named series as a table plus an ASCII profile.

    Each series gets a column; a final block sketches the first series as a
    horizontal bar chart so the curve shape is visible in a terminal.
    """
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [values[i] for values in series.values()])
    table = format_table(headers, rows, title=title, float_format="{:.2f}")
    if not series:
        return table
    first_name, first_values = next(iter(series.items()))
    maximum = max(max(v for v in first_values if v == v), 1e-12)
    bars = []
    for x, value in zip(x_values, first_values):
        bar = "#" * int(round(width * value / maximum))
        bars.append(f"{x!s:>8} |{bar}")
    return table + f"\n\n{first_name}:\n" + "\n".join(bars)
