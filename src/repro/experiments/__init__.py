"""Experiment harness regenerating every table and figure of the paper.

Each experiment is addressable by the identifier used in the paper
(``table1`` … ``table5``, ``figure1`` … ``figure14``) through
:func:`repro.experiments.registry.run_experiment`, and is backed by a
dedicated function returning a structured result with a ``format()`` method
that prints the same rows / series the paper reports.  The ``sat_flips``
and ``sat_portfolio`` experiments extend the evaluation to the WalkSAT
workload the paper's conclusion proposes.

The solver-backed experiments run on scaled-down instances (see DESIGN.md §4
for the substitution rationale); instance sizes, run counts and core counts
are controlled by :class:`repro.experiments.config.ExperimentConfig`, with a
``quick`` profile sized for laptops/CI and a ``full`` profile for longer
campaigns.
"""

from repro.experiments.config import BENCHMARK_KEYS, SAT_KEY, ExperimentConfig
from repro.experiments.data import (
    collect_benchmark_observations,
    collect_sat_observations,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentEntry,
    list_experiments,
    run_experiment,
)

__all__ = [
    "BENCHMARK_KEYS",
    "EXPERIMENTS",
    "ExperimentConfig",
    "ExperimentEntry",
    "SAT_KEY",
    "collect_benchmark_observations",
    "collect_sat_observations",
    "list_experiments",
    "run_experiment",
]
