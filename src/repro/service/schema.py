"""Wire format of the campaign service.

A submission carries a full :class:`~repro.experiments.config.ExperimentConfig`
(optionally seeded from a named profile), the controller choice and the
stage selection — exactly the knobs of the ``campaign`` CLI subcommand, so
an HTTP-submitted campaign and a CLI campaign at the same ``base_seed``
produce byte-identical observations and decision logs (the service-smoke
CI lane asserts this).

Everything here is strict: unknown config keys, unknown controllers and
malformed tenant names are :class:`ValueError` at the door (the server
maps them to 400), never a half-configured campaign later.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Any, Mapping

from repro.campaign import CONTROLLER_NAMES, StageSpec, select_stages
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import campaign_stages_for

__all__ = [
    "CampaignSubmission",
    "DEFAULT_TENANT",
    "config_from_dict",
    "config_to_dict",
]

#: Tenant used when a submission does not name one.
DEFAULT_TENANT = "default"

#: Tenant names become cache directory names; keep them filesystem-safe.
_TENANT_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")

#: Class-constant dataclass fields that are not configuration (the paper's
#: per-benchmark fit choices); they never cross the wire.
_NON_CONFIG_FIELDS = frozenset({"PAPER_FAMILIES", "PAPER_SHIFT_RULES"})

#: Config fields serialised as JSON arrays and restored as tuples.
_TUPLE_FIELDS = frozenset({"cores", "extended_cores"})

_PROFILES: Mapping[str, Any] = {
    "tiny": ExperimentConfig.tiny,
    "quick": ExperimentConfig.quick,
    "medium": ExperimentConfig.medium,
    "full": ExperimentConfig.full,
}


def _config_field_names() -> list[str]:
    return [
        f.name for f in dataclasses.fields(ExperimentConfig) if f.name not in _NON_CONFIG_FIELDS
    ]


def config_to_dict(config: ExperimentConfig) -> dict:
    """JSON-ready mapping of every real configuration field."""
    out: dict[str, Any] = {}
    for name in _config_field_names():
        value = getattr(config, name)
        out[name] = list(value) if name in _TUPLE_FIELDS else value
    return out


def config_from_dict(
    payload: Mapping[str, Any] | None, *, profile: str = "quick"
) -> ExperimentConfig:
    """Build a config from a profile plus field overrides.

    ``payload`` may name any real :class:`ExperimentConfig` field; values
    are applied over the named profile's defaults, so a full serialised
    config round-trips and a sparse ``{"base_seed": 7}`` works too.
    Unknown keys and unknown profiles raise :class:`ValueError` (the
    config's own ``__post_init__`` validates the values themselves).
    """
    if profile not in _PROFILES:
        raise ValueError(f"unknown profile {profile!r} (profiles: {', '.join(_PROFILES)})")
    base = _PROFILES[profile]()
    if not payload:
        return base
    known = set(_config_field_names())
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ValueError(f"unknown config fields: {unknown}")
    overrides: dict[str, Any] = {}
    for name, value in payload.items():
        overrides[name] = tuple(value) if name in _TUPLE_FIELDS else value
    return dataclasses.replace(base, **overrides)


@dataclasses.dataclass(frozen=True)
class CampaignSubmission:
    """One validated campaign request.

    Attributes
    ----------
    config:
        The full experiment configuration the campaign runs at.
    controller:
        ``"off"``, ``"static"`` or ``"adaptive"`` (the orchestrator's
        vocabulary).
    stages:
        Optional comma-separated stage-key globs (the CLI's ``--stages``
        syntax); dependencies are pulled in automatically.
    dry_run:
        Plan only — record the static plan in the decision log without
        executing any solver.
    tenant:
        Cache namespace the campaign's batches are attributed to.
    """

    config: ExperimentConfig
    controller: str = "off"
    stages: str | None = None
    dry_run: bool = False
    tenant: str = DEFAULT_TENANT

    def __post_init__(self) -> None:
        if self.controller not in CONTROLLER_NAMES:
            raise ValueError(
                f"unknown controller {self.controller!r} "
                f"(controllers: {', '.join(CONTROLLER_NAMES)})"
            )
        if not _TENANT_RE.match(self.tenant):
            raise ValueError(
                f"invalid tenant {self.tenant!r}: need 1-64 characters from "
                "[A-Za-z0-9._-]"
            )
        # Resolve the stage selection eagerly so a bad pattern is a 400 at
        # submission time, not a failed job minutes later.
        self.build_stages()

    def build_stages(self) -> list[StageSpec]:
        """The stage DAG this submission asks the orchestrator to run."""
        stages = campaign_stages_for(self.config)
        if self.stages is not None:
            stages = select_stages(stages, self.stages)
        return stages

    def as_dict(self) -> dict:
        return {
            "config": config_to_dict(self.config),
            "controller": self.controller,
            "stages": self.stages,
            "dry_run": self.dry_run,
            "tenant": self.tenant,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignSubmission":
        """Parse and validate a submission body.

        Accepted keys: ``profile`` (default ``"quick"``), ``config``
        (field overrides over the profile), ``controller``, ``stages``,
        ``dry_run``, ``tenant``.  Anything else is an error.
        """
        if not isinstance(payload, Mapping):
            raise ValueError(f"submission must be a JSON object, got {type(payload).__name__}")
        allowed = {"profile", "config", "controller", "stages", "dry_run", "tenant"}
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise ValueError(f"unknown submission fields: {unknown}")
        config = config_from_dict(
            payload.get("config"), profile=payload.get("profile", "quick")
        )
        stages = payload.get("stages")
        if stages is not None and not isinstance(stages, str):
            raise ValueError("stages must be a comma-separated string of key globs")
        return cls(
            config=config,
            controller=payload.get("controller", "off"),
            stages=stages,
            dry_run=bool(payload.get("dry_run", False)),
            tenant=payload.get("tenant", DEFAULT_TENANT),
        )
