"""The campaign service's HTTP front end (standard library only).

Endpoints (all JSON; ``/healthz`` is the only unauthenticated route when a
token is configured):

======  ==============================  =========================================
Method  Path                            Meaning
======  ==============================  =========================================
GET     ``/healthz``                    liveness + queue/cache stats (no auth)
POST    ``/v1/campaigns``               submit a campaign → ``202`` + job id
GET     ``/v1/campaigns``               list job snapshots
GET     ``/v1/campaigns/<id>``          one job snapshot
GET     ``/v1/campaigns/<id>/events``   chunked JSON-lines event stream
                                        (``?since=N`` resumes mid-stream)
GET     ``/v1/campaigns/<id>/report``   the full replayable campaign report
DELETE  ``/v1/campaigns/<id>``          cancel (idempotent)
======  ==============================  =========================================

Backpressure is explicit: a full queue answers ``429`` with a
``Retry-After`` header instead of buffering.  Authentication is a shared
bearer token (``Authorization: Bearer …`` or ``X-Auth-Token``) compared in
constant time; worker-fleet authentication is separate (the engine's
socket handshake token).  The event stream is HTTP/1.1 chunked so clients
see observations and controller decisions the moment they happen — one
JSON object per line, the orchestrator's live telemetry.
"""

from __future__ import annotations

import hmac
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.service.jobs import Job, JobManager, QueueFull
from repro.service.schema import CampaignSubmission

__all__ = ["CampaignServer"]

#: Cap on request bodies (a full submission is well under 4 KiB).
_MAX_BODY = 1 << 20

#: Idle keep-alive cadence of the event stream: after this many seconds
#: without events a blank line is sent so dead clients are detected.
_STREAM_KEEPALIVE = 15.0


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-lasvegas-service"

    # The server object carries the manager/token (set by CampaignServer).
    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    @property
    def token(self) -> str | None:
        return self.server.auth_token  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- plumbing -------------------------------------------------------
    def _send_json(self, status: int, payload: dict, *, headers: dict | None = None) -> None:
        body = (json.dumps(payload) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str, *, headers: dict | None = None) -> None:
        self._send_json(status, {"error": message}, headers=headers)

    def _authorized(self) -> bool:
        if self.token is None:
            return True
        supplied = ""
        auth = self.headers.get("Authorization", "")
        if auth.startswith("Bearer "):
            supplied = auth[len("Bearer ") :]
        elif self.headers.get("X-Auth-Token"):
            supplied = self.headers["X-Auth-Token"]
        return hmac.compare_digest(supplied, self.token)

    def _require_auth(self) -> bool:
        if self._authorized():
            return True
        self._error(
            401,
            "authentication required: pass the service token as "
            "'Authorization: Bearer <token>' or 'X-Auth-Token'",
            headers={"WWW-Authenticate": 'Bearer realm="repro-lasvegas"'},
        )
        return False

    def _read_body(self) -> bytes | None:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > _MAX_BODY:
            self._error(413, f"request body exceeds {_MAX_BODY} bytes")
            return None
        return self.rfile.read(length)

    def _job_or_404(self, job_id: str) -> Job | None:
        job = self.manager.get(job_id)
        if job is None:
            self._error(404, f"no job {job_id!r}")
        return job

    # -- routes ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        if parts == ["healthz"]:
            store = self.manager.store
            self._send_json(
                200,
                {
                    "status": "ok",
                    "jobs": self.manager.counts(),
                    "cache": None if store is None else store.stats(),
                },
            )
            return
        if not self._require_auth():
            return
        if parts == ["v1", "campaigns"]:
            self._send_json(200, {"jobs": [job.snapshot() for job in self.manager.jobs()]})
            return
        if len(parts) == 3 and parts[:2] == ["v1", "campaigns"]:
            job = self._job_or_404(parts[2])
            if job is not None:
                self._send_json(200, job.snapshot())
            return
        if len(parts) == 4 and parts[:2] == ["v1", "campaigns"] and parts[3] == "events":
            job = self._job_or_404(parts[2])
            if job is not None:
                try:
                    since = int(parse_qs(url.query).get("since", ["0"])[0])
                except ValueError:
                    self._error(400, "since must be an integer event sequence number")
                    return
                self._stream_events(job, since)
            return
        if len(parts) == 4 and parts[:2] == ["v1", "campaigns"] and parts[3] == "report":
            job = self._job_or_404(parts[2])
            if job is None:
                return
            if job.report is None:
                self._error(
                    409,
                    f"job {job.job_id} has no report yet (state: {job.state})",
                )
                return
            self._send_json(200, job.report.as_dict())
            return
        self._error(404, f"no route for GET {url.path}")

    def do_POST(self) -> None:  # noqa: N802
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        if not self._require_auth():
            return
        if parts == ["v1", "campaigns"]:
            body = self._read_body()
            if body is None:
                return
            try:
                payload = json.loads(body or b"{}")
                submission = CampaignSubmission.from_dict(payload)
            except (ValueError, TypeError) as exc:
                self._error(400, f"invalid submission: {exc}")
                return
            try:
                job = self.manager.submit(submission)
            except QueueFull as exc:
                self._error(
                    429, str(exc), headers={"Retry-After": f"{exc.retry_after:g}"}
                )
                return
            self._send_json(
                202,
                {
                    "job_id": job.job_id,
                    "state": job.state,
                    "status_url": f"/v1/campaigns/{job.job_id}",
                    "events_url": f"/v1/campaigns/{job.job_id}/events",
                    "report_url": f"/v1/campaigns/{job.job_id}/report",
                },
            )
            return
        self._error(404, f"no route for POST {url.path}")

    def do_DELETE(self) -> None:  # noqa: N802
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        if not self._require_auth():
            return
        if len(parts) == 3 and parts[:2] == ["v1", "campaigns"]:
            job = self.manager.cancel(parts[2])
            if job is None:
                self._error(404, f"no job {parts[2]!r}")
                return
            self._send_json(200, job.snapshot())
            return
        self._error(404, f"no route for DELETE {url.path}")

    # -- event streaming ------------------------------------------------
    def _stream_events(self, job: Job, since: int) -> None:
        """Chunked JSON-lines: one event per line, live until terminal."""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()

        def chunk(data: bytes) -> None:
            self.wfile.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
            self.wfile.flush()

        cursor = max(0, since)
        try:
            while True:
                events, terminal = job.wait_events(cursor, timeout=_STREAM_KEEPALIVE)
                for event in events:
                    chunk((json.dumps(event) + "\n").encode())
                cursor += len(events)
                if terminal and not events:
                    break
                if not events:  # keep-alive so dead clients surface as EPIPE
                    chunk(b"\n")
        except (BrokenPipeError, ConnectionResetError):
            return  # client went away; nothing to clean up
        self.wfile.write(b"0\r\n\r\n")
        self.wfile.flush()


class CampaignServer:
    """The long-lived campaign service: HTTP server + job manager glue.

    Parameters
    ----------
    manager:
        The :class:`JobManager` that owns queueing and execution.
    host, port:
        Bind address (``port=0`` picks a free port; see :attr:`address`).
    token:
        Shared API token.  ``None`` disables HTTP authentication (the
        worker-fleet token, if any, lives on the engine backend).
    """

    def __init__(
        self,
        manager: JobManager,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        token: str | None = None,
    ) -> None:
        self.manager = manager
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.manager = manager  # type: ignore[attr-defined]
        self._httpd.auth_token = token  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"{host}:{port}"

    @property
    def url(self) -> str:
        return f"http://{self.address}"

    def start(self) -> str:
        """Serve in a background thread; returns the bound address."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="campaign-http",
                daemon=True,
                kwargs={"poll_interval": 0.1},
            )
            self._thread.start()
        return self.address

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's foreground mode)."""
        self._httpd.serve_forever(poll_interval=0.1)

    def stop(self, *, drain_seconds: float = 0.0) -> None:
        """Shut down: stop accepting, drain/cancel jobs, close the socket."""
        self.manager.stop(drain_seconds=drain_seconds)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "CampaignServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
