"""Client for the campaign service (standard library :mod:`urllib` only).

The bundled counterpart of :mod:`repro.service.server`: submit a campaign,
poll its status, stream its live events (observations + controller
decisions as JSON lines) and fetch the finished, replayable
:class:`~repro.campaign.report.CampaignReport`.  The CI service-smoke lane
and the service benchmark drive the server exclusively through this class,
so it doubles as the API's executable specification.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Iterator, Mapping

from repro.campaign import CampaignReport
from repro.service.jobs import TERMINAL_STATES
from repro.service.schema import CampaignSubmission

__all__ = ["CampaignClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An HTTP error from the service, with status and decoded detail."""

    def __init__(self, status: int, message: str, *, retry_after: float | None = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.detail = message
        self.retry_after = retry_after


class CampaignClient:
    """Talk to one campaign service.

    Parameters
    ----------
    base_url:
        ``http://host:port`` (a bare ``host:port`` is accepted too).
    token:
        Shared API token, sent as ``Authorization: Bearer …``.
    timeout:
        Per-request socket timeout in seconds (streams use it between
        chunks, so it must exceed the server's keep-alive cadence).
    """

    def __init__(
        self, base_url: str, *, token: str | None = None, timeout: float = 30.0
    ) -> None:
        if "://" not in base_url:
            base_url = f"http://{base_url}"
        self.base_url = base_url.rstrip("/")
        self.token = token
        self.timeout = timeout

    # -- plumbing -------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Mapping[str, Any] | None = None
    ) -> urllib.request.Request:
        headers = {"Accept": "application/json"}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        data = None
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        return urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers, method=method
        )

    def _call(self, method: str, path: str, payload: Mapping[str, Any] | None = None) -> dict:
        request = self._request(method, path, payload)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            raise self._service_error(exc) from None

    @staticmethod
    def _service_error(exc: urllib.error.HTTPError) -> ServiceError:
        try:
            detail = json.loads(exc.read()).get("error", exc.reason)
        except (ValueError, OSError):
            detail = str(exc.reason)
        retry_after = exc.headers.get("Retry-After")
        return ServiceError(
            exc.code,
            detail,
            retry_after=float(retry_after) if retry_after else None,
        )

    # -- API ------------------------------------------------------------
    def health(self) -> dict:
        return self._call("GET", "/healthz")

    def submit(self, submission: CampaignSubmission | Mapping[str, Any]) -> str:
        """Submit a campaign; returns the job id.

        Raises :class:`ServiceError` with ``status == 429`` and a
        ``retry_after`` hint when the queue is full.
        """
        if isinstance(submission, CampaignSubmission):
            submission = submission.as_dict()
        return self._call("POST", "/v1/campaigns", submission)["job_id"]

    def status(self, job_id: str) -> dict:
        return self._call("GET", f"/v1/campaigns/{job_id}")

    def list_jobs(self) -> list[dict]:
        return self._call("GET", "/v1/campaigns")["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._call("DELETE", f"/v1/campaigns/{job_id}")

    def report(self, job_id: str) -> CampaignReport:
        """Fetch the finished (or failed) job's replayable report."""
        return CampaignReport.from_dict(self._call("GET", f"/v1/campaigns/{job_id}/report"))

    def stream_events(self, job_id: str, *, since: int = 0) -> Iterator[dict]:
        """Yield the job's events live, from ``since``, until it finishes.

        Each yielded dict is one JSON line of the server's chunked stream
        (``http.client`` de-chunks transparently); blank keep-alive lines
        are filtered out.
        """
        request = self._request("GET", f"/v1/campaigns/{job_id}/events?since={since}")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                for raw in response:
                    line = raw.strip()
                    if line:
                        yield json.loads(line)
        except urllib.error.HTTPError as exc:
            raise self._service_error(exc) from None

    def wait(self, job_id: str, *, timeout: float = 300.0, poll: float = 0.2) -> dict:
        """Poll until the job reaches a terminal state; returns the snapshot."""
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.status(job_id)
            if snapshot["state"] in TERMINAL_STATES:
                return snapshot
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {snapshot['state']!r} after {timeout:g}s"
                )
            time.sleep(poll)
