"""The service's job queue: bounded admission, one executor, live events.

Campaigns are CPU-bound and share one engine backend (possibly a
distributed worker fleet), so the service runs them **one at a time** from
a bounded FIFO queue.  Admission control is explicit backpressure: a full
queue raises :class:`QueueFull` carrying a ``retry_after`` hint, which the
HTTP layer turns into ``429`` + ``Retry-After`` — clients are told to come
back, never silently buffered into an unbounded backlog.

Each :class:`Job` owns an append-only event stream (state transitions,
per-run observations from the engine's progress callback, controller
decisions from the orchestrator's decision listener) guarded by a
condition variable, so any number of HTTP streamers can block on
:meth:`Job.wait_events` without polling.  Cancellation is cooperative: a
cancelled running job is interrupted at its next observation boundary.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import uuid
from typing import Any

from repro.campaign import CampaignError, CampaignReport, run_campaign
from repro.engine.backends import BatchExecutor
from repro.engine.distributed import DistributedBackend
from repro.engine.progress import BatchProgress
from repro.service.schema import CampaignSubmission
from repro.service.tenants import TenantCacheStore

__all__ = ["Job", "JobCancelled", "JobManager", "QueueFull", "TERMINAL_STATES"]

#: States a job never leaves.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


class QueueFull(RuntimeError):
    """The job queue is at capacity; retry after ``retry_after`` seconds."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class JobCancelled(Exception):
    """Raised inside the executor to unwind a cancelled running campaign."""


class Job:
    """One submitted campaign: state, event stream, eventual report."""

    def __init__(self, job_id: str, submission: CampaignSubmission) -> None:
        self.job_id = job_id
        self.submission = submission
        self.state = "queued"
        self.created_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.report: CampaignReport | None = None
        self.error: str | None = None
        self._events: list[dict] = []
        self._cond = threading.Condition()
        self._cancel = threading.Event()
        self._seq = itertools.count()
        self.emit("state", state="queued")

    # -- event stream ---------------------------------------------------
    def emit(self, kind: str, **payload: Any) -> None:
        """Append one event and wake every waiting streamer."""
        with self._cond:
            self._events.append({"seq": next(self._seq), "kind": kind, **payload})
            self._cond.notify_all()

    def wait_events(self, since: int, timeout: float | None = None) -> tuple[list[dict], bool]:
        """Events with ``seq >= since`` (blocking) plus a terminal flag.

        Blocks until new events exist or the job reaches a terminal state;
        a ``timeout`` bounds the wait (returning possibly-empty slices so
        streamers can emit keep-alives).
        """
        with self._cond:
            self._cond.wait_for(
                lambda: len(self._events) > since or self.state in TERMINAL_STATES,
                timeout=timeout,
            )
            return list(self._events[since:]), self.state in TERMINAL_STATES

    # -- state ----------------------------------------------------------
    def transition(self, state: str, **payload: Any) -> None:
        with self._cond:
            self.state = state
            if state == "running":
                self.started_at = time.time()
            if state in TERMINAL_STATES:
                self.finished_at = time.time()
        self.emit("state", state=state, **payload)

    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    def request_cancel(self) -> None:
        self._cancel.set()
        with self._cond:
            self._cond.notify_all()

    def snapshot(self) -> dict:
        """JSON-ready status view (no run streams — that is the report's job)."""
        with self._cond:
            out = {
                "job_id": self.job_id,
                "state": self.state,
                "tenant": self.submission.tenant,
                "controller": self.submission.controller,
                "dry_run": self.submission.dry_run,
                "stages": self.submission.stages,
                "created_at": self.created_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "events": len(self._events),
                "error": self.error,
            }
            if self.report is not None:
                out["summary"] = self.report.summary()
            return out


class JobManager:
    """Bounded FIFO of campaign jobs drained by a single executor thread.

    Parameters
    ----------
    backend:
        Engine backend every campaign runs on — a name (``"serial"``,
        ``"thread"`` …) or a configured :class:`BatchExecutor` (a
        :class:`DistributedBackend` keeps its worker fleet connected
        across jobs, which is the point of the long-lived service).
    workers:
        Worker count for elastic string backends.
    store:
        Multi-tenant observation cache; each job runs with its tenant's
        view.  ``None`` disables caching.
    max_queue:
        Admission bound: at most this many jobs queued *waiting* (the
        running job does not count).  Beyond it, :class:`QueueFull`.
    retry_after:
        The ``Retry-After`` hint (seconds) surfaced on backpressure.
    """

    def __init__(
        self,
        *,
        backend: str | BatchExecutor | None = None,
        workers: int | None = None,
        store: TenantCacheStore | None = None,
        max_queue: int = 8,
        retry_after: float = 5.0,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.backend = backend
        self.workers = workers
        self.store = store
        self.max_queue = max_queue
        self.retry_after = retry_after
        self._queue: queue.Queue[Job | None] = queue.Queue()
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._accepting = True
        self._executor = threading.Thread(
            target=self._run_loop, name="campaign-executor", daemon=True
        )
        self._executor.start()

    # -- submission and lookup ------------------------------------------
    def submit(self, submission: CampaignSubmission) -> Job:
        with self._lock:
            if not self._accepting:
                raise QueueFull("service is shutting down", self.retry_after)
            queued = sum(1 for job in self._jobs.values() if job.state == "queued")
            if queued >= self.max_queue:
                raise QueueFull(
                    f"job queue is full ({queued}/{self.max_queue} queued)",
                    self.retry_after,
                )
            job = Job(uuid.uuid4().hex[:12], submission)
            self._jobs[job.job_id] = job
        self._queue.put(job)
        return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def counts(self) -> dict:
        with self._lock:
            out: dict[str, int] = {}
            for job in self._jobs.values():
                out[job.state] = out.get(job.state, 0) + 1
            return out

    def cancel(self, job_id: str) -> Job | None:
        """Request cancellation; queued jobs die immediately, running
        jobs at their next observation boundary."""
        job = self.get(job_id)
        if job is None:
            return None
        job.request_cancel()
        with job._cond:
            if job.state == "queued":
                job.state = "cancelled"
                job.finished_at = time.time()
        if job.state == "cancelled":
            job.emit("state", state="cancelled")
        return job

    # -- executor -------------------------------------------------------
    def _run_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            if job.state != "queued":  # cancelled while waiting
                continue
            self._execute(job)

    def _execute(self, job: Job) -> None:
        job.transition("running")
        submission = job.submission
        start = time.perf_counter()

        def progress(event: BatchProgress) -> None:
            if job.cancel_requested():
                raise JobCancelled()
            job.emit(
                "observation",
                index=event.index,
                completed=event.completed,
                total=event.total,
                solved=bool(event.result.solved),
                iterations=int(event.result.iterations),
                runtime_seconds=float(event.result.runtime_seconds),
                elapsed_seconds=time.perf_counter() - start,
            )

        def on_decision(decision) -> None:
            # Nested, not splatted: a decision has its own "kind" field.
            job.emit("decision", decision=decision.as_dict())

        cache = None
        if self.store is not None:
            cache = self.store.tenant_cache(submission.tenant)
        try:
            report = run_campaign(
                submission.build_stages(),
                controller=submission.controller,
                backend=self.backend,
                workers=self.workers if isinstance(self.backend, (str, type(None))) else None,
                progress=progress,
                cache=cache,
                dry_run=submission.dry_run,
                decision_listener=on_decision,
            )
        except JobCancelled:
            job.transition("cancelled")
            return
        except CampaignError as exc:
            job.report = exc.report
            job.error = str(exc)
            job.transition("failed", reason=str(exc), summary=exc.report.summary())
            return
        except Exception as exc:  # noqa: BLE001 - a broken job must not kill the service
            job.error = f"{type(exc).__name__}: {exc}"
            job.transition("failed", reason=job.error)
            return
        job.report = report
        job.transition("done", summary=report.summary())

    # -- lifecycle ------------------------------------------------------
    def stop(self, *, drain_seconds: float = 0.0) -> None:
        """Stop accepting jobs, cancel the backlog, unwind the executor.

        ``drain_seconds`` > 0 lets the *running* job finish (up to the
        deadline) before it is cancelled; it is also passed through to a
        :class:`DistributedBackend` shutdown so connected workers are not
        severed mid-unit.
        """
        with self._lock:
            self._accepting = False
            backlog = [job for job in self._jobs.values() if job.state == "queued"]
        for job in backlog:
            self.cancel(job.job_id)
        deadline = time.monotonic() + max(0.0, drain_seconds)
        while time.monotonic() < deadline:
            if all(job.state in TERMINAL_STATES for job in self.jobs()):
                break
            time.sleep(0.05)
        for job in self.jobs():
            if job.state not in TERMINAL_STATES:
                job.request_cancel()
        self._queue.put(None)
        self._executor.join(timeout=10.0)
        if isinstance(self.backend, DistributedBackend):
            self.backend.shutdown(drain_seconds=drain_seconds)
