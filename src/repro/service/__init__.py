"""Campaign-as-a-service: a long-lived HTTP front end for the orchestrator.

The CLI runs one campaign per process; this package keeps a solver fleet
warm behind a small HTTP/JSON API so repeated campaigns share one process,
one engine backend (including a distributed worker fleet) and one
multi-tenant observation cache:

* :mod:`repro.service.schema` — the wire format: JSON ↔
  :class:`~repro.experiments.config.ExperimentConfig` and the validated
  :class:`CampaignSubmission` envelope.
* :mod:`repro.service.tenants` — the shared content-addressed observation
  store with per-tenant namespaces, LRU byte-bound eviction and read
  pinning, plus the :class:`repro.engine.cache.ObservationCache` adapter
  the engine consumes.
* :mod:`repro.service.jobs` — the bounded job queue: one executor thread,
  per-job event streams (observations + controller decisions),
  backpressure (:class:`QueueFull`) and cancellation.
* :mod:`repro.service.server` — the stdlib HTTP server: submit, status,
  chunked JSON-lines event streaming, report fetch, cancel, health; shared
  bearer-token authentication.
* :mod:`repro.service.client` — the matching :mod:`urllib`-based client
  (used by the CI service-smoke lane and the benchmarks).

Everything is standard library + the repo itself: no new dependencies.

The package's contract: HTTP is transport, not semantics.  A report
fetched from the service equals a serial CLI run of the same profile and
seed on every deterministic field (``runtime_seconds`` is the one
wall-clock field), which is also what makes cached batches safely
shareable across tenants.
"""

from repro.service.client import CampaignClient, ServiceError
from repro.service.jobs import Job, JobCancelled, JobManager, QueueFull
from repro.service.schema import (
    CampaignSubmission,
    config_from_dict,
    config_to_dict,
)
from repro.service.server import CampaignServer
from repro.service.tenants import TenantCacheStore, TenantObservationCache

__all__ = [
    "CampaignClient",
    "CampaignServer",
    "CampaignSubmission",
    "Job",
    "JobCancelled",
    "JobManager",
    "QueueFull",
    "ServiceError",
    "TenantCacheStore",
    "TenantObservationCache",
    "config_from_dict",
    "config_to_dict",
]
