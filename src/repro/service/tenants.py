"""Multi-tenant observation store: shared content, namespaced attribution.

The engine's :class:`~repro.engine.cache.ObservationCache` is purely
content-addressed: the cache key hashes the algorithm fingerprint, label,
run count and base seed, and seed derivation is backend-independent — so a
batch computed for one tenant is *provably* the batch every other tenant
with the same key would compute.  The service therefore keeps one shared
object pool and gives each tenant only a namespace of marker files:

* ``<root>/objects/<name>`` — the JSON batches, stored once.
* ``<root>/tenants/<tenant>/<name>`` — zero-byte markers recording which
  tenants touched which objects (attribution, stats, cleanup).

On top sits an LRU byte-bound: when the pool exceeds ``max_bytes`` the
least-recently-used objects are evicted — except objects currently being
read, which are pinned until the read completes (an eviction racing a
reader must never yield a torn batch).

:class:`TenantObservationCache` adapts one tenant's view of the store to
the engine's cache interface by overriding the persistence hooks
(``read_batch``/``write_batch``); key derivation — the actual cache
contract — stays in the base class.
"""

from __future__ import annotations

import collections
import os
import threading
from pathlib import Path

from repro.engine.cache import ObservationCache
from repro.multiwalk.observations import RuntimeObservations

__all__ = ["TenantCacheStore", "TenantObservationCache"]


class TenantCacheStore:
    """Shared content-addressed batch pool with per-tenant namespaces.

    Thread-safe: batch reads happen outside the index lock under a pin
    and writes land through an atomic rename, so a slow read or write
    never stalls the whole service (the lock covers bookkeeping and
    eviction unlinks only).
    """

    def __init__(self, root: str | Path, *, max_bytes: int | None = None) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.tenants_dir = self.root / "tenants"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self.tenants_dir.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._pins: collections.Counter[str] = collections.Counter()
        #: name -> size in bytes, least-recently-used first.
        self._lru: collections.OrderedDict[str, int] = collections.OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.cross_tenant_hits = 0
        # Adopt whatever a previous service run left behind (oldest first,
        # so a restart evicts in roughly the original access order).
        for path in sorted(self.objects_dir.iterdir(), key=lambda p: p.stat().st_mtime):
            if path.is_file():
                self._lru[path.name] = path.stat().st_size

    # -- paths ----------------------------------------------------------
    def object_path(self, name: str) -> Path:
        return self.objects_dir / name

    def tenant_dir(self, tenant: str) -> Path:
        path = self.tenants_dir / tenant
        path.mkdir(parents=True, exist_ok=True)
        return path

    # -- metrics --------------------------------------------------------
    def total_bytes(self) -> int:
        with self._lock:
            return sum(self._lru.values())

    def stats(self) -> dict:
        with self._lock:
            return {
                "objects": len(self._lru),
                "total_bytes": sum(self._lru.values()),
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
                "cross_tenant_hits": self.cross_tenant_hits,
                "tenants": sorted(p.name for p in self.tenants_dir.iterdir() if p.is_dir()),
            }

    # -- core operations ------------------------------------------------
    def load(self, tenant: str, name: str) -> RuntimeObservations | None:
        """Read object ``name`` on behalf of ``tenant`` (``None`` on a miss).

        A hit on an object this tenant never touched counts as a
        *cross-tenant* hit: content another tenant computed, served
        without recomputation.  The object is pinned for the duration of
        the read so concurrent eviction cannot tear it.
        """
        marker = self.tenant_dir(tenant) / name
        path = self.object_path(name)
        with self._lock:
            if name not in self._lru:
                self.misses += 1
                return None
            self.hits += 1
            if not marker.exists():
                self.cross_tenant_hits += 1
            self._pins[name] += 1
            self._lru.move_to_end(name)
        try:
            observations = RuntimeObservations.load(path)
        finally:
            with self._lock:
                self._pins[name] -= 1
                if self._pins[name] <= 0:
                    del self._pins[name]
        marker.touch()
        return observations

    def store(self, tenant: str, name: str, observations: RuntimeObservations) -> Path:
        """Persist a batch into the shared pool and attribute it to ``tenant``."""
        path = self.object_path(name)
        tmp = path.with_name(f"{name}.tmp-{os.getpid()}-{threading.get_ident()}")
        observations.save(tmp)
        size = tmp.stat().st_size
        os.replace(tmp, path)
        (self.tenant_dir(tenant) / name).touch()
        with self._lock:
            self._lru[name] = size
            self._lru.move_to_end(name)
            self.stores += 1
            self._evict_locked(keep=name)
        return path

    def _evict_locked(self, keep: str | None = None) -> None:
        """Drop LRU objects until the pool fits ``max_bytes``.

        Pinned objects (mid-read) and the just-stored ``keep`` object are
        skipped; if everything left is pinned the pool may transiently
        exceed the bound — correctness beats the byte budget.
        """
        if self.max_bytes is None:
            return
        total = sum(self._lru.values())
        for name in list(self._lru):
            if total <= self.max_bytes:
                return
            if name == keep or name in self._pins:
                continue
            total -= self._lru.pop(name)
            self.evictions += 1
            self.object_path(name).unlink(missing_ok=True)
            for tenant_dir in self.tenants_dir.iterdir():
                (tenant_dir / name).unlink(missing_ok=True)

    def tenant_cache(
        self, tenant: str, *, prefix: str = "observations"
    ) -> "TenantObservationCache":
        """The engine-facing cache adapter for one tenant."""
        return TenantObservationCache(self, tenant, prefix=prefix)


class TenantObservationCache(ObservationCache):
    """One tenant's view of a :class:`TenantCacheStore`.

    Key derivation (fingerprint → file name) is inherited unchanged from
    :class:`ObservationCache`; only the persistence hooks are rerouted, so
    the engine's ``collect_batch`` transparently reads and writes the
    shared multi-tenant pool.
    """

    def __init__(
        self, store: TenantCacheStore, tenant: str, *, prefix: str = "observations"
    ) -> None:
        super().__init__(store.tenant_dir(tenant), prefix=prefix)
        self.store_backend = store
        self.tenant = tenant

    def read_batch(self, path: Path) -> RuntimeObservations | None:
        return self.store_backend.load(self.tenant, path.name)

    def write_batch(self, observations: RuntimeObservations, path: Path) -> None:
        self.store_backend.store(self.tenant, path.name, observations)
