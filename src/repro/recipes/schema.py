"""The versioned, strictly-validated workload-recipe document format.

A recipe is to a campaign what a WfCommons recipe is to a workflow: not the
raw observations, but a fitted *description* precise enough to synthesise
realistic campaigns from.  The document is plain JSON with a format tag
(:data:`RECIPE_FORMAT`); every layer validates strictly — unknown fields,
unknown format versions, unknown families/kinds/workloads and out-of-range
values are :class:`RecipeError` at parse time, never a half-built campaign
later (the same posture as :mod:`repro.service.schema`).

Round-trip losslessness is part of the contract and pinned by tests:
``CampaignRecipe.from_dict(r.as_dict())`` equals ``r``, and
``load(save(r))`` reproduces the JSON byte for byte.

Two example recipes profiled from the nightly ``medium`` campaign ship
under ``repro/recipes/bundled/`` (see :func:`bundled_recipe_names`); the
docs-check CI lane runs the documented CLI commands against them.
"""

from __future__ import annotations

import dataclasses
import json
import math
import re
from importlib import resources
from pathlib import Path
from typing import Mapping, Sequence

__all__ = [
    "CampaignRecipe",
    "FittedDistribution",
    "InstanceMix",
    "RECIPE_FORMAT",
    "RecipeError",
    "StageRecipe",
    "bundled_recipe_names",
    "bundled_recipe_path",
    "load_bundled_recipe",
]

#: Format tag of the recipe JSON (bump on incompatible layout changes).
RECIPE_FORMAT = "repro-campaign-recipe-v1"

#: Distribution families a recipe may record (``stats.online`` fitters).
DISTRIBUTION_FAMILIES: Mapping[str, tuple[str, ...]] = {
    "censored_exponential": ("x0", "lam"),
    "lognormal": ("mu", "sigma"),
}

#: Workload kinds a stage may declare (the campaign-stage vocabulary).
STAGE_KINDS: tuple[str, ...] = ("benchmarks", "sat", "sat_policies")

#: Instance workloads a recipe stage can describe.
WORKLOADS: tuple[str, ...] = ("csp", "sat")

#: CSP problems the generator can rebuild (key → importable problem).
CSP_PROBLEMS: tuple[str, ...] = ("MS", "AI", "Costas")

#: SAT instance families the generator can draw from.
SAT_FAMILIES: tuple[str, ...] = ("planted", "uniform", "dimacs")

#: Recipe names double as filenames and CLI arguments; keep them safe.
_NAME_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


class RecipeError(ValueError):
    """A recipe document failed validation."""


def _require_keys(payload: Mapping, allowed: Sequence[str], where: str) -> None:
    if not isinstance(payload, Mapping):
        raise RecipeError(f"{where} must be a JSON object, got {type(payload).__name__}")
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise RecipeError(f"{where}: unknown fields {unknown}")


def _finite(value: object, where: str) -> float:
    try:
        out = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise RecipeError(f"{where} must be a number, got {value!r}") from None
    if not math.isfinite(out):
        raise RecipeError(f"{where} must be finite, got {out!r}")
    return out


def _positive_int(value: object, where: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise RecipeError(f"{where} must be an integer, got {value!r}")
    if value < 1:
        raise RecipeError(f"{where} must be >= 1, got {value}")
    return value


@dataclasses.dataclass(frozen=True)
class FittedDistribution:
    """A fitted runtime-distribution family with its parameters.

    ``family`` is one of :data:`DISTRIBUTION_FAMILIES`; ``params`` must
    carry exactly that family's parameter names with finite values
    (``censored_exponential`` additionally requires a positive rate).
    ``n_events``/``n_censored`` record the evidence the fit saw.
    """

    family: str
    params: Mapping[str, float]
    n_events: int
    n_censored: int

    def __post_init__(self) -> None:
        if self.family not in DISTRIBUTION_FAMILIES:
            raise RecipeError(
                f"unknown distribution family {self.family!r} "
                f"(families: {', '.join(DISTRIBUTION_FAMILIES)})"
            )
        expected = DISTRIBUTION_FAMILIES[self.family]
        got = tuple(sorted(self.params))
        if got != tuple(sorted(expected)):
            raise RecipeError(
                f"family {self.family!r} needs params {sorted(expected)}, got {sorted(got)}"
            )
        params = {name: _finite(value, f"params.{name}") for name, value in self.params.items()}
        if self.family == "censored_exponential" and params["lam"] <= 0:
            raise RecipeError(f"params.lam must be positive, got {params['lam']!r}")
        if self.family == "lognormal" and params["sigma"] < 0:
            raise RecipeError(f"params.sigma must be >= 0, got {params['sigma']!r}")
        object.__setattr__(self, "params", params)
        if not isinstance(self.n_events, int) or isinstance(self.n_events, bool) or self.n_events < 1:
            raise RecipeError(f"n_events must be an integer >= 1, got {self.n_events!r}")
        if not isinstance(self.n_censored, int) or isinstance(self.n_censored, bool) or self.n_censored < 0:
            raise RecipeError(f"n_censored must be an integer >= 0, got {self.n_censored!r}")

    def mean(self) -> float:
        """Mean runtime (iterations) implied by the fitted parameters."""
        if self.family == "censored_exponential":
            return self.params["x0"] + 1.0 / self.params["lam"]
        return math.exp(self.params["mu"] + 0.5 * self.params["sigma"] ** 2)

    def as_dict(self) -> dict:
        return {
            "family": self.family,
            "params": {name: self.params[name] for name in sorted(self.params)},
            "n_events": self.n_events,
            "n_censored": self.n_censored,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FittedDistribution":
        _require_keys(payload, ("family", "params", "n_events", "n_censored"), "runtime")
        for key in ("family", "params", "n_events", "n_censored"):
            if key not in payload:
                raise RecipeError(f"runtime: missing field {key!r}")
        params = payload["params"]
        if not isinstance(params, Mapping):
            raise RecipeError("runtime.params must be a JSON object")
        return cls(
            family=payload["family"],
            params=dict(params),
            n_events=payload["n_events"],
            n_censored=payload["n_censored"],
        )


@dataclasses.dataclass(frozen=True)
class InstanceMix:
    """What instances a stage's runs were (and will be) drawn over.

    ``workload="csp"`` names one of the registered permutation problems at
    a size; ``workload="sat"`` names an instance family (planted draws,
    uniform-ratio draws or a bundled DIMACS file), the draw parameters and
    the flip policy.  ``instance_seed`` is the configuration-level seed the
    generated draw derives from — recording it is what lets ``scale=1``
    generation rebuild the *same* formula the profiled campaign solved.
    """

    workload: str
    problem: str | None = None
    size: int | None = None
    sat_family: str | None = None
    n_variables: int | None = None
    clause_ratio: float | None = None
    k: int | None = None
    policy: str | None = None
    dimacs: str | None = None
    instance_seed: int | None = None

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise RecipeError(
                f"unknown workload {self.workload!r} (workloads: {', '.join(WORKLOADS)})"
            )
        if self.workload == "csp":
            if self.problem not in CSP_PROBLEMS:
                raise RecipeError(
                    f"csp workload needs problem in {CSP_PROBLEMS}, got {self.problem!r}"
                )
            _positive_int(self.size, "instance.size")
            forbidden = {
                name: getattr(self, name)
                for name in ("sat_family", "n_variables", "clause_ratio", "k", "policy", "dimacs")
                if getattr(self, name) is not None
            }
            if forbidden:
                raise RecipeError(f"csp workload forbids SAT fields {sorted(forbidden)}")
        else:  # sat
            if self.sat_family not in SAT_FAMILIES:
                raise RecipeError(
                    f"sat workload needs sat_family in {SAT_FAMILIES}, got {self.sat_family!r}"
                )
            if self.problem is not None or self.size is not None:
                raise RecipeError("sat workload forbids csp fields ['problem', 'size']")
            if not isinstance(self.policy, str) or not self.policy:
                raise RecipeError(f"sat workload needs a policy, got {self.policy!r}")
            if self.sat_family == "dimacs":
                if not isinstance(self.dimacs, str) or not self.dimacs:
                    raise RecipeError("sat_family 'dimacs' needs a dimacs instance name")
            else:
                _positive_int(self.n_variables, "instance.n_variables")
                _positive_int(self.k, "instance.k")
                if _finite(self.clause_ratio, "instance.clause_ratio") <= 0:
                    raise RecipeError(
                        f"instance.clause_ratio must be positive, got {self.clause_ratio!r}"
                    )
                if self.dimacs is not None:
                    raise RecipeError("generated SAT families forbid a dimacs name")
        if self.instance_seed is not None and (
            isinstance(self.instance_seed, bool) or not isinstance(self.instance_seed, int)
        ):
            raise RecipeError(f"instance_seed must be an integer, got {self.instance_seed!r}")

    def as_dict(self) -> dict:
        out: dict = {"workload": self.workload}
        for name in (
            "problem",
            "size",
            "sat_family",
            "n_variables",
            "clause_ratio",
            "k",
            "policy",
            "dimacs",
            "instance_seed",
        ):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out

    @classmethod
    def from_dict(cls, payload: Mapping) -> "InstanceMix":
        allowed = (
            "workload",
            "problem",
            "size",
            "sat_family",
            "n_variables",
            "clause_ratio",
            "k",
            "policy",
            "dimacs",
            "instance_seed",
        )
        _require_keys(payload, allowed, "instance")
        if "workload" not in payload:
            raise RecipeError("instance: missing field 'workload'")
        return cls(**{name: payload.get(name) for name in allowed})


@dataclasses.dataclass(frozen=True)
class StageRecipe:
    """One profiled stage: instance mix, fitted runtimes, quotas and DAG edge.

    ``budget_ratio`` is the observed headroom ``budget / fitted mean`` —
    how many fitted mean-runtimes the per-run censoring threshold allowed.
    The generator preserves it when re-deriving budgets, so synthesised
    campaigns censor at the same *relative* depth the profiled one did.
    """

    key: str
    label: str
    kind: str
    instance: InstanceMix
    runtime: FittedDistribution
    censoring_rate: float
    quota: int
    budget: int
    base_seed: int
    budget_ratio: float
    after: tuple[str, ...] = ()
    required: bool = True
    supports_cutoff: bool = False

    def __post_init__(self) -> None:
        if not self.key or not isinstance(self.key, str):
            raise RecipeError(f"stage key must be a non-empty string, got {self.key!r}")
        if not isinstance(self.label, str) or not self.label:
            raise RecipeError(f"stage {self.key!r}: label must be a non-empty string")
        if self.kind not in STAGE_KINDS:
            raise RecipeError(
                f"stage {self.key!r}: unknown kind {self.kind!r} (kinds: {', '.join(STAGE_KINDS)})"
            )
        rate = _finite(self.censoring_rate, f"stage {self.key!r}: censoring_rate")
        if not 0.0 <= rate <= 1.0:
            raise RecipeError(f"stage {self.key!r}: censoring_rate must be in [0, 1], got {rate}")
        object.__setattr__(self, "censoring_rate", rate)
        _positive_int(self.quota, f"stage {self.key!r}: quota")
        _positive_int(self.budget, f"stage {self.key!r}: budget")
        if isinstance(self.base_seed, bool) or not isinstance(self.base_seed, int):
            raise RecipeError(f"stage {self.key!r}: base_seed must be an integer")
        ratio = _finite(self.budget_ratio, f"stage {self.key!r}: budget_ratio")
        if ratio <= 0:
            raise RecipeError(f"stage {self.key!r}: budget_ratio must be positive, got {ratio}")
        object.__setattr__(self, "budget_ratio", ratio)
        object.__setattr__(self, "after", tuple(self.after))
        if any(not isinstance(dep, str) or not dep for dep in self.after):
            raise RecipeError(f"stage {self.key!r}: after must be non-empty stage keys")

    def as_dict(self) -> dict:
        return {
            "key": self.key,
            "label": self.label,
            "kind": self.kind,
            "instance": self.instance.as_dict(),
            "runtime": self.runtime.as_dict(),
            "censoring_rate": self.censoring_rate,
            "quota": self.quota,
            "budget": self.budget,
            "base_seed": self.base_seed,
            "budget_ratio": self.budget_ratio,
            "after": list(self.after),
            "required": self.required,
            "supports_cutoff": self.supports_cutoff,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "StageRecipe":
        allowed = (
            "key",
            "label",
            "kind",
            "instance",
            "runtime",
            "censoring_rate",
            "quota",
            "budget",
            "base_seed",
            "budget_ratio",
            "after",
            "required",
            "supports_cutoff",
        )
        _require_keys(payload, allowed, "stage")
        missing = [k for k in allowed if k not in payload]
        if missing:
            raise RecipeError(f"stage: missing fields {missing}")
        if not isinstance(payload["after"], list):
            raise RecipeError("stage.after must be a JSON array of stage keys")
        for flag in ("required", "supports_cutoff"):
            if not isinstance(payload[flag], bool):
                raise RecipeError(f"stage.{flag} must be a boolean, got {payload[flag]!r}")
        return cls(
            key=payload["key"],
            label=payload["label"],
            kind=payload["kind"],
            instance=InstanceMix.from_dict(payload["instance"]),
            runtime=FittedDistribution.from_dict(payload["runtime"]),
            censoring_rate=payload["censoring_rate"],
            quota=payload["quota"],
            budget=payload["budget"],
            base_seed=payload["base_seed"],
            budget_ratio=payload["budget_ratio"],
            after=tuple(payload["after"]),
            required=payload["required"],
            supports_cutoff=payload["supports_cutoff"],
        )


@dataclasses.dataclass(frozen=True)
class CampaignRecipe:
    """A complete campaign description: named, validated, losslessly stored.

    ``source`` records provenance (the profiled report's controller and
    total observation count) without affecting generation — two recipes
    differing only in ``source`` generate identical campaigns.
    """

    name: str
    description: str
    stages: tuple[StageRecipe, ...]
    source: Mapping[str, object] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name or ""):
            raise RecipeError(
                f"invalid recipe name {self.name!r}: need 1-64 characters from [A-Za-z0-9._-]"
            )
        if not isinstance(self.description, str):
            raise RecipeError("description must be a string")
        object.__setattr__(self, "stages", tuple(self.stages))
        if not self.stages:
            raise RecipeError("a recipe needs at least one stage")
        keys = [stage.key for stage in self.stages]
        duplicates = sorted({key for key in keys if keys.count(key) > 1})
        if duplicates:
            raise RecipeError(f"duplicate stage keys: {duplicates}")
        known = set(keys)
        for stage in self.stages:
            unknown = [dep for dep in stage.after if dep not in known]
            if unknown:
                raise RecipeError(f"stage {stage.key!r} depends on unknown stages {unknown}")
        # Kahn's algorithm: the DAG must be acyclic to be runnable at all.
        done: set[str] = set()
        remaining = list(self.stages)
        while remaining:
            ready = [s for s in remaining if all(dep in done for dep in s.after)]
            if not ready:
                cycle = sorted(s.key for s in remaining)
                raise RecipeError(f"stage dependencies contain a cycle among {cycle}")
            done.update(s.key for s in ready)
            remaining = [s for s in remaining if s.key not in done]
        source = dict(self.source)
        object.__setattr__(self, "source", source)

    def stage(self, key: str) -> StageRecipe:
        for stage in self.stages:
            if stage.key == key:
                return stage
        raise KeyError(f"no stage {key!r} in recipe {self.name!r}")

    def as_dict(self) -> dict:
        return {
            "format": RECIPE_FORMAT,
            "name": self.name,
            "description": self.description,
            "source": dict(self.source),
            "stages": [stage.as_dict() for stage in self.stages],
        }

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CampaignRecipe":
        _require_keys(payload, ("format", "name", "description", "source", "stages"), "recipe")
        if payload.get("format") != RECIPE_FORMAT:
            raise RecipeError(
                f"not a campaign recipe (format={payload.get('format')!r}, "
                f"expected {RECIPE_FORMAT!r})"
            )
        missing = [k for k in ("name", "description", "source", "stages") if k not in payload]
        if missing:
            raise RecipeError(f"recipe: missing fields {missing}")
        if not isinstance(payload["stages"], list):
            raise RecipeError("recipe.stages must be a JSON array")
        if not isinstance(payload["source"], Mapping):
            raise RecipeError("recipe.source must be a JSON object")
        return cls(
            name=payload["name"],
            description=payload["description"],
            source=dict(payload["source"]),
            stages=tuple(StageRecipe.from_dict(s) for s in payload["stages"]),
        )

    @classmethod
    def load(cls, path: str | Path) -> "CampaignRecipe":
        try:
            payload = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise RecipeError(f"{path}: not valid JSON ({exc})") from None
        return cls.from_dict(payload)


# ----------------------------------------------------------------------
# Bundled example recipes (see docs/recipes.md)
# ----------------------------------------------------------------------
def _bundled_root():
    return resources.files("repro.recipes") / "bundled"


def bundled_recipe_names() -> list[str]:
    """Names of the recipes shipped with the package (without ``.json``)."""
    return sorted(
        entry.name[: -len(".json")]
        for entry in _bundled_root().iterdir()
        if entry.name.endswith(".json")
    )


def bundled_recipe_path(name: str) -> Path:
    """Filesystem path of a bundled recipe; raises ``RecipeError`` if unknown."""
    entry = _bundled_root() / f"{name}.json"
    with resources.as_file(entry) as path:
        if not path.exists():
            known = ", ".join(bundled_recipe_names())
            raise RecipeError(f"no bundled recipe {name!r} (bundled: {known})")
        return path


def load_bundled_recipe(name: str) -> CampaignRecipe:
    """Load one of the recipes shipped with the package."""
    return CampaignRecipe.load(bundled_recipe_path(name))
