"""Synthesise runnable campaigns from a workload recipe.

The WfCommons "generate an instance" step for campaigns:
:func:`generate_stages` expands a :class:`~repro.recipes.schema.CampaignRecipe`
into an ordinary :class:`~repro.campaign.stages.StageSpec` DAG — nothing
downstream knows the campaign is synthetic, so generated campaigns run
through every engine backend, every controller and the HTTP service
unchanged.

**Scale semantics.**  ``scale=s`` emits ``s`` replicas of every recipe
stage.  Replica 0 keeps the recipe's key/label; replica ``r`` gets
``"{key}~{r}"`` / ``"{label} ~{r}"`` (``~`` is inert in ``fnmatch`` globs,
so ``--stages 'SAT*'`` still selects every SAT replica).  Each replica
carries the full recipe quota, so total observations grow linearly —
"replay production traffic at 10×" is ``--scale 10``.

**Determinism.**  Replica seed roots and replica instance draws are pure
functions of ``(seed root, stage key, replica)`` through SHA-256, so the
same recipe + scale + seed produce byte-identical plans (and therefore
byte-identical campaigns) on every invocation and host.  At ``scale=1``
with no seed override, replica 0 reuses the recipe's recorded stage seed
root *and* recorded instance seed — the generated campaign replays the
profiled campaign's exact runs, which is what pins the profile→generate
round-trip test.

:func:`describe_campaign` renders the same expansion as a pure-JSON plan
(what ``repro-lasvegas recipe generate`` prints) and
:func:`generate_submission` projects a recipe onto the campaign service's
wire format, where the scale lands on the observation quota instead of on
replica count (one config describes one stage set).
"""

from __future__ import annotations

import dataclasses
import hashlib

import numpy as np

from repro.campaign.stages import StageSpec
from repro.recipes.schema import CampaignRecipe, InstanceMix, RecipeError, StageRecipe

__all__ = ["describe_campaign", "generate_stages", "generate_submission"]

#: Instance-draw salts, mirroring ``ExperimentConfig.sat_benchmark`` — the
#: draw ``default_rng((seed, salt))`` must match the config's bit for bit
#: or scale-1 replay breaks (pinned by the round-trip test).
_PLANTED_SALT = 0x5A7
_UNIFORM_SALT = 0x5AA

#: Noise of generated WalkSAT solvers, mirroring ``SATBenchmarkSpec.noise``.
_SAT_NOISE = 0.5


def _derive_seed(root: int, key: str, replica: int) -> int:
    """Deterministic 63-bit replica seed — a pure function of its inputs."""
    digest = hashlib.sha256(f"{root}:{key}:{replica}".encode()).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


def _plan(recipe: CampaignRecipe, *, scale: int, base_seed: int | None) -> list[dict]:
    """The shared stage expansion behind generation and description."""
    if not isinstance(scale, int) or isinstance(scale, bool) or scale < 1:
        raise RecipeError(f"scale must be an integer >= 1, got {scale!r}")
    if base_seed is not None and (isinstance(base_seed, bool) or not isinstance(base_seed, int)):
        raise RecipeError(f"base_seed must be an integer, got {base_seed!r}")

    plans: list[dict] = []
    for stage in recipe.stages:
        root = stage.base_seed if base_seed is None else base_seed
        for replica in range(scale):
            replay = base_seed is None and replica == 0
            if replay:
                seed = stage.base_seed
                instance_seed = stage.instance.instance_seed
            else:
                seed = _derive_seed(root, stage.key, replica)
                instance_seed = None
            if instance_seed is None:  # fresh draw (or hand-written recipe)
                instance_seed = _derive_seed(root, f"{stage.key}/instance", replica)
            suffix = "" if replica == 0 else f"~{replica}"
            plans.append(
                {
                    "key": stage.key + suffix,
                    "label": stage.label + (f" {suffix}" if suffix else ""),
                    "kind": stage.kind,
                    "replica": replica,
                    "recipe_stage": stage.key,
                    "quota": stage.quota,
                    "budget": stage.budget,
                    "base_seed": seed,
                    "instance": dataclasses.replace(
                        stage.instance, instance_seed=instance_seed
                    ).as_dict(),
                    "runtime_family": stage.runtime.family,
                    "expected_mean_iterations": stage.runtime.mean(),
                    "after": [dep + suffix for dep in stage.after],
                    "required": stage.required,
                    "supports_cutoff": stage.supports_cutoff,
                }
            )
    return plans


def _make_solver_factory(instance: InstanceMix):
    """``make_solver(budget)`` for one generated stage's instance mix."""
    if instance.workload == "csp":
        from repro.csp.problems import (
            AllIntervalProblem,
            CostasArrayProblem,
            MagicSquareProblem,
        )
        from repro.solvers.adaptive_search import AdaptiveSearch, AdaptiveSearchConfig

        problem_cls = {
            "MS": MagicSquareProblem,
            "AI": AllIntervalProblem,
            "Costas": CostasArrayProblem,
        }[instance.problem]
        size = instance.size

        def make_csp_solver(budget: int):
            return AdaptiveSearch(
                problem_cls(size), AdaptiveSearchConfig(max_iterations=budget)
            )

        return make_csp_solver

    from repro.sat.dimacs import load_bundled_instance
    from repro.sat.generators import (
        clause_count_for_ratio,
        random_ksat,
        random_planted_ksat,
    )
    from repro.solvers.walksat import WalkSAT, WalkSATConfig

    policy = instance.policy
    if instance.sat_family == "dimacs":
        name = instance.dimacs

        def formula_factory():
            return load_bundled_instance(name)

    else:
        n = instance.n_variables
        k = instance.k
        n_clauses = clause_count_for_ratio(n, instance.clause_ratio)
        seed = instance.instance_seed
        if instance.sat_family == "planted":

            def formula_factory():
                rng = np.random.default_rng((seed, _PLANTED_SALT))
                formula, _planted = random_planted_ksat(n, n_clauses, k, rng=rng)
                return formula

        else:  # uniform

            def formula_factory():
                rng = np.random.default_rng((seed, _UNIFORM_SALT))
                return random_ksat(n, n_clauses, k, rng=rng)

    def make_sat_solver(budget: int):
        return WalkSAT(
            formula_factory(),
            WalkSATConfig(max_flips=budget, noise=_SAT_NOISE, policy=policy),
        )

    return make_sat_solver


def generate_stages(
    recipe: CampaignRecipe, *, scale: int = 1, base_seed: int | None = None
) -> list[StageSpec]:
    """Expand a recipe into a runnable :class:`StageSpec` DAG.

    ``scale`` replicas per recipe stage; ``base_seed`` reroots every seed
    stream and instance draw (``None`` keeps the recipe's recorded seeds —
    at ``scale=1`` that replays the profiled campaign exactly).
    """
    stages = []
    for plan in _plan(recipe, scale=scale, base_seed=base_seed):
        instance = InstanceMix.from_dict(plan["instance"])
        stages.append(
            StageSpec(
                key=plan["key"],
                label=plan["label"],
                kind=plan["kind"],
                make_solver=_make_solver_factory(instance),
                quota=plan["quota"],
                base_seed=plan["base_seed"],
                budget=plan["budget"],
                emit_keys=(plan["key"],),
                after=tuple(plan["after"]),
                required=plan["required"],
                supports_cutoff=plan["supports_cutoff"],
            )
        )
    return stages


def describe_campaign(
    recipe: CampaignRecipe, *, scale: int = 1, base_seed: int | None = None
) -> dict:
    """The generated campaign as a pure-JSON plan (no solvers built).

    Byte-identical across invocations for the same inputs when dumped with
    ``sort_keys=True`` — the determinism contract the generation tests pin.
    """
    plans = _plan(recipe, scale=scale, base_seed=base_seed)
    return {
        "recipe": recipe.name,
        "scale": scale,
        "base_seed": base_seed,
        "n_stages": len(plans),
        "total_quota": sum(plan["quota"] for plan in plans),
        "stages": plans,
    }


def generate_submission(
    recipe: CampaignRecipe,
    *,
    scale: int = 1,
    base_seed: int | None = None,
    controller: str = "off",
    tenant: str | None = None,
) -> dict:
    """Project a recipe onto the campaign service's submission format.

    A service submission carries one :class:`ExperimentConfig`, which can
    express one size per CSP problem and one SAT workload — so here
    ``scale`` multiplies the observation quota (``n_sequential_runs``)
    instead of adding replica stages, and the stage selection restricts
    the campaign to exactly the recipe's stage set.  The returned mapping
    is validated against :mod:`repro.service.schema` before it is
    returned, so a recipe the service cannot express fails here, not as a
    400 later.
    """
    # Lazy: the recipes package must stay importable without the service.
    from repro.service import schema as service_schema

    if not isinstance(scale, int) or isinstance(scale, bool) or scale < 1:
        raise RecipeError(f"scale must be an integer >= 1, got {scale!r}")

    csp_fields = {"MS": "magic_square_n", "AI": "all_interval_n", "Costas": "costas_n"}
    config: dict = {}
    sat_stage: StageRecipe | None = None
    for stage in recipe.stages:
        instance = stage.instance
        if instance.workload == "csp":
            field = csp_fields[instance.problem]
            if config.get(field, instance.size) != instance.size:
                raise RecipeError(
                    f"recipe {recipe.name!r}: conflicting sizes for {instance.problem}"
                )
            config[field] = instance.size
        else:
            if sat_stage is None or stage.key == "SAT":
                sat_stage = stage
            if (
                stage.instance.sat_family != sat_stage.instance.sat_family
                or stage.instance.n_variables != sat_stage.instance.n_variables
                or stage.instance.clause_ratio != sat_stage.instance.clause_ratio
                or stage.instance.k != sat_stage.instance.k
                or stage.instance.dimacs != sat_stage.instance.dimacs
            ):
                raise RecipeError(
                    f"recipe {recipe.name!r}: one submission carries one SAT workload; "
                    f"stages {sat_stage.key!r} and {stage.key!r} disagree"
                )

    if sat_stage is not None:
        instance = sat_stage.instance
        config["sat_family"] = instance.sat_family
        if instance.sat_family == "dimacs":
            config["sat_dimacs"] = instance.dimacs
        else:
            config["sat_n_variables"] = instance.n_variables
            config["sat_clause_ratio"] = instance.clause_ratio
            config["sat_k"] = instance.k
        if sat_stage.key == "SAT":
            config["sat_policy"] = instance.policy

    if base_seed is not None:
        config["base_seed"] = base_seed
    else:
        recorded = [
            s.instance.instance_seed
            for s in recipe.stages
            if s.instance.instance_seed is not None
        ]
        if recorded:
            config["base_seed"] = recorded[0]

    config["n_sequential_runs"] = max(2, max(s.quota for s in recipe.stages) * scale)
    config["max_iterations"] = max(s.budget for s in recipe.stages)

    submission: dict = {
        "profile": "quick",
        "config": config,
        "controller": controller,
        "stages": ",".join(stage.key for stage in recipe.stages),
    }
    if tenant is not None:
        submission["tenant"] = tenant
    try:
        service_schema.CampaignSubmission.from_dict(submission)
    except ValueError as exc:
        raise RecipeError(
            f"recipe {recipe.name!r} cannot be expressed as a service submission: {exc}"
        ) from exc
    return submission
