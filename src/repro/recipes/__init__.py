"""Workload recipes: profiled campaign descriptions and synthetic campaigns.

**Contract.**  A *recipe* (:class:`~repro.recipes.schema.CampaignRecipe`) is
a small, versioned JSON document describing a campaign the way WfCommons
describes scientific workflows: per stage a fitted runtime-distribution
family with its parameters, the observed censoring rate, an instance-mix
descriptor (which problem/instance family at which size), the stage-DAG
shape and the observed quota/budget ratios.  :mod:`~repro.recipes.profile`
turns any :class:`~repro.campaign.report.CampaignReport` into a recipe by
refitting the recorded observation streams through the same streaming
estimators the live controller uses (:mod:`repro.stats.online`);
:mod:`~repro.recipes.generate` synthesises a runnable campaign back out of
a recipe at any ``--scale`` — emitting ordinary
:class:`~repro.campaign.stages.StageSpec` DAGs over regenerated instances,
so generated campaigns run through every engine backend, every controller
and the HTTP service unchanged.

**Bit-identity invariants.**  Recipes are lossless: ``save``/``load``
round-trips reproduce the document byte for byte, and
``from_dict(as_dict(r))`` equals ``r``.  Generation is deterministic: the
same recipe, scale and seed produce byte-identical campaign plans on every
invocation and host — replica seed streams and replica instance draws are
pure functions of ``(seed, stage key, replica)``.  At ``scale=1`` with no
seed override, a generated campaign replays the profiled campaign's exact
seed streams and instances, so running it reproduces the original
observations bit for bit (and therefore refits to the original recipe).
"""

from repro.recipes.generate import (
    describe_campaign,
    generate_stages,
    generate_submission,
)
from repro.recipes.profile import ProfileError, profile_report
from repro.recipes.schema import (
    RECIPE_FORMAT,
    CampaignRecipe,
    FittedDistribution,
    InstanceMix,
    RecipeError,
    StageRecipe,
    bundled_recipe_names,
    bundled_recipe_path,
    load_bundled_recipe,
)

__all__ = [
    "CampaignRecipe",
    "FittedDistribution",
    "InstanceMix",
    "ProfileError",
    "RECIPE_FORMAT",
    "RecipeError",
    "StageRecipe",
    "bundled_recipe_names",
    "bundled_recipe_path",
    "describe_campaign",
    "generate_stages",
    "generate_submission",
    "load_bundled_recipe",
    "profile_report",
]
