"""Profile a campaign report into a workload recipe.

:func:`profile_report` is the WfCommons "analyze an instance" step for
campaigns: it takes any replayable
:class:`~repro.campaign.report.CampaignReport` — written by
``repro-lasvegas campaign --report``, fetched from the HTTP service, or
downloaded from the nightly CI artifact — and refits each stage's recorded
run stream through the *same* streaming estimators the live controller
uses (:mod:`repro.stats.online`), so a recipe can never disagree with the
model the controller would have fitted online.

Per stage the profiler extracts:

* the fitted runtime family — lognormal when the fitted log-sigma exceeds
  the controller's heavy-tail threshold (the same rule that flips a stage
  to Luby restarts), censored shifted-exponential otherwise;
* the observed censoring rate and the budget/mean headroom ratio;
* the instance mix, parsed back out of the stage's label and seed root
  (labels are machine-stable by the campaign bit-identity contract, which
  is what makes them safe to parse).

Stages that never ran (dry runs, stages behind a failure) are dropped;
stages that ran but never solved are a :class:`ProfileError` — a recipe
cannot assert a runtime distribution nobody ever observed (same posture as
the BUG-021 campaign guardrail).
"""

from __future__ import annotations

import re

from repro.campaign.report import CampaignReport, StageReport
from repro.experiments.config import BENCHMARK_KEYS
from repro.recipes.schema import (
    CampaignRecipe,
    FittedDistribution,
    InstanceMix,
    RecipeError,
    StageRecipe,
)
from repro.stats.online import StreamingCensoredExponential, StreamingLognormal

__all__ = ["HEAVY_TAIL_LOG_SIGMA", "ProfileError", "profile_report"]

#: Log-space dispersion above which a stage profiles as lognormal — the
#: same threshold the adaptive controller uses for its fixed-vs-Luby
#: restart decision (`AdaptiveController.heavy_tail_log_sigma`).
HEAVY_TAIL_LOG_SIGMA = 1.0

_CSP_LABELS = {
    "MS": re.compile(r"^MS (?P<size>\d+)x(?P=size)$"),
    "AI": re.compile(r"^AI (?P<size>\d+)$"),
    "Costas": re.compile(r"^Costas (?P<size>\d+)$"),
}
_SAT_LABEL = re.compile(
    r"^(?:(?P<uniform>uniform )?(?P<k>\d+)-SAT (?P<n>\d+)@(?P<ratio>[0-9.]+)"
    r"|dimacs (?P<dimacs>\S+))"
    r"(?: \[(?P<policy>[\w+-]+)\])?$"
)


class ProfileError(ValueError):
    """A campaign report cannot be profiled into a recipe."""


def _parse_instance(stage: StageReport) -> InstanceMix:
    """Recover the instance mix from a stage's label, key and seed root."""
    if stage.kind == "benchmarks":
        pattern = _CSP_LABELS.get(stage.key)
        if pattern is None:
            raise ProfileError(
                f"stage {stage.key!r}: unknown benchmark key (known: {BENCHMARK_KEYS})"
            )
        match = pattern.match(stage.label)
        if match is None:
            raise ProfileError(
                f"stage {stage.key!r}: cannot parse benchmark label {stage.label!r}"
            )
        # Benchmark seed roots are config.base_seed + table offset.
        offset = BENCHMARK_KEYS.index(stage.key)
        return InstanceMix(
            workload="csp",
            problem=stage.key,
            size=int(match.group("size")),
            instance_seed=stage.base_seed - offset,
        )

    if stage.kind in ("sat", "sat_policies"):
        match = _SAT_LABEL.match(stage.label)
        if match is None:
            raise ProfileError(f"stage {stage.key!r}: cannot parse SAT label {stage.label!r}")
        policy = match.group("policy") or "walksat"
        # SAT stages (and the policy family, which shares the SAT seed
        # stream) sit past the three benchmark seed roots.
        instance_seed = stage.base_seed - len(BENCHMARK_KEYS)
        if match.group("dimacs"):
            return InstanceMix(
                workload="sat",
                sat_family="dimacs",
                dimacs=match.group("dimacs"),
                policy=policy,
                instance_seed=instance_seed,
            )
        return InstanceMix(
            workload="sat",
            sat_family="uniform" if match.group("uniform") else "planted",
            n_variables=int(match.group("n")),
            clause_ratio=float(match.group("ratio")),
            k=int(match.group("k")),
            policy=policy,
            instance_seed=instance_seed,
        )

    raise ProfileError(f"stage {stage.key!r}: unknown stage kind {stage.kind!r}")


def _fit_runtime(stage: StageReport) -> FittedDistribution:
    """Refit a stage's run stream with the controller's streaming estimators."""
    exponential = StreamingCensoredExponential()
    lognormal = StreamingLognormal()
    for record in stage.stream:
        censored = not record.solved
        exponential.update(record.iterations, censored=censored)
        if censored:
            lognormal.update(record.iterations, censored=True)
        elif record.iterations > 0:  # log of a zero-iteration solve is undefined
            lognormal.update(record.iterations)

    if exponential.n_events == 0:
        raise ProfileError(
            f"stage {stage.key!r}: no solved observations to fit "
            f"({exponential.n_censored} runs, all censored)"
        )

    sigma = lognormal.sigma
    if sigma is not None and sigma > HEAVY_TAIL_LOG_SIGMA:
        # Heavy tail: the same rule that flips the live controller to Luby.
        return FittedDistribution(
            family="lognormal",
            params={"mu": lognormal.mu, "sigma": sigma},
            n_events=lognormal.n_events,
            n_censored=lognormal.n_censored,
        )
    fit = exponential.fit()
    return FittedDistribution(
        family="censored_exponential",
        params={"x0": fit.x0, "lam": fit.lam},
        n_events=exponential.n_events,
        n_censored=exponential.n_censored,
    )


def profile_report(
    report: CampaignReport, *, name: str, description: str = ""
) -> CampaignRecipe:
    """Refit a campaign report's observation streams into a recipe.

    ``name`` becomes the recipe's name (filename-safe slug); stages that
    never issued a run are dropped (their dependents' ``after`` edges are
    filtered to the profiled set).  Raises :class:`ProfileError` when no
    stage ran, a stage solved nothing, or a stage label cannot be parsed
    back into an instance mix.
    """
    executed = [stage for stage in report.stages if stage.stream]
    if not executed:
        raise ProfileError("report contains no executed stages (dry run?)")
    kept = {stage.key for stage in executed}

    stage_recipes = []
    for stage in executed:
        runtime = _fit_runtime(stage)
        mean = runtime.mean()
        if mean <= 0:
            raise ProfileError(f"stage {stage.key!r}: fitted mean runtime {mean} is not positive")
        n_censored = sum(1 for record in stage.stream if not record.solved)
        stage_recipes.append(
            StageRecipe(
                key=stage.key,
                label=stage.label,
                kind=stage.kind,
                instance=_parse_instance(stage),
                runtime=runtime,
                censoring_rate=n_censored / len(stage.stream),
                quota=stage.quota,
                budget=stage.budget,
                base_seed=stage.base_seed,
                budget_ratio=stage.budget / mean,
                after=tuple(dep for dep in stage.after if dep in kept),
                required=stage.required,
                supports_cutoff=stage.supports_cutoff,
            )
        )

    try:
        return CampaignRecipe(
            name=name,
            description=description,
            source={
                "controller": report.controller,
                "n_stages": len(stage_recipes),
                "n_observations": sum(len(stage.stream) for stage in executed),
                "n_solved": sum(stage.n_solved for stage in executed),
            },
            stages=tuple(stage_recipes),
        )
    except RecipeError as exc:
        raise ProfileError(f"profiled report does not form a valid recipe: {exc}") from exc
