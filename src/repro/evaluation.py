"""Shared evaluation-path plumbing for the local-search solvers.

Both local-search solvers in this package — :class:`~repro.solvers.adaptive_search.AdaptiveSearch`
over permutation CSPs and :class:`~repro.solvers.walksat.WalkSAT` over CNF
formulas — follow the same two-path design for their hot loop:

* an *incremental* path maintains problem-specific counters attached to the
  current configuration and answers the per-move questions (candidate swap
  costs, break counts, the unsatisfied-clause set) in time proportional to
  the move's footprint instead of the instance size;
* a *batch* path recomputes everything from scratch through the vectorised
  cost functions — slower by orders of magnitude, but trivially correct, so
  it serves as the cross-check oracle and as the fallback where no
  incremental kernel exists.

The two paths are *exact* mirrors: for a given seed, a solver consuming the
incremental path takes bit-identical decisions (same RNG draws, same
tie-breaking order) to one consuming the batch path.  This module hosts the
plumbing that both solvers share:

* :data:`EVALUATION_MODES` and :func:`validate_evaluation_mode` — the
  ``evaluation = "auto" | "incremental" | "batch"`` configuration knob;
* :class:`EvaluationPath` — the lifecycle contract of one interchangeable
  path (``reinit`` on (re)starts, then per-move queries and commits);
* :func:`resolve_evaluation_path` — the mode-resolution rule (``"auto"``
  prefers the incremental path when the problem provides one and it is
  expected to win at the instance's size, ``"incremental"`` demands it,
  ``"batch"`` forces the oracle);
* :class:`IncrementalState` / :class:`IncrementalEvaluator` — the
  attach/commit/reset lifecycle shared by the CSP delta kernels
  (:class:`repro.csp.permutation.DeltaEvaluator`) and the SAT clause state
  (:mod:`repro.sat.incremental`).
"""

from __future__ import annotations

import abc
from typing import Any, Callable

__all__ = [
    "EVALUATION_MODES",
    "EvaluationPath",
    "IncrementalEvaluator",
    "IncrementalState",
    "LOCKSTEP_PATH",
    "resolve_evaluation_path",
    "supports_lockstep",
    "validate_evaluation_mode",
]

#: Accepted values of the ``evaluation`` configuration attribute of the
#: local-search solver configs.
EVALUATION_MODES: tuple[str, ...] = ("auto", "incremental", "batch")

#: Name of the third evaluation tier: the vectorised lockstep kernel of
#: :mod:`repro.sat.vectorized`.  It is deliberately *not* a member of
#: :data:`EVALUATION_MODES` — a per-run ``evaluation`` mode answers "how
#: does ONE walk evaluate its moves", whereas lockstep batches a whole
#: *block of walks* into one kernel call, so it lives behind the execution
#: engine seam instead (``--backend lockstep``, see
#: :mod:`repro.engine.lockstep`) and is routed by :func:`supports_lockstep`.
LOCKSTEP_PATH: str = "lockstep"


def supports_lockstep(algorithm) -> bool:
    """Whether the engine may service this algorithm's seed-blocks in lockstep.

    True when the algorithm exposes the lockstep entry points — a
    ``run_lockstep(seeds)`` batch runner plus a ``lockstep_supported()``
    probe — and the probe accepts the current configuration (e.g. WalkSAT
    with an SKC-family policy; the Novelty family reports ``False`` and
    stays on the scalar path).  Algorithms without the entry points are
    simply not lockstep-capable; it is not an error.
    """
    probe = getattr(algorithm, "lockstep_supported", None)
    return (
        callable(getattr(algorithm, "run_lockstep", None))
        and callable(probe)
        and bool(probe())
    )


def validate_evaluation_mode(mode: str) -> None:
    """Raise ``ValueError`` unless ``mode`` is a known evaluation mode."""
    if mode not in EVALUATION_MODES:
        raise ValueError(f"evaluation must be one of {EVALUATION_MODES}, got {mode!r}")


class EvaluationPath(abc.ABC):
    """One interchangeable evaluation path of a solver hot loop.

    A path owns whatever state it needs to answer the solver's per-move
    queries; :meth:`reinit` (re)binds it to a fresh configuration — called
    once before the loop and again on every restart or partial reset.  The
    query/commit surface is solver-specific (swap costs for Adaptive
    Search, break counts and the unsatisfied-clause set for WalkSAT), but
    every implementation pair obeys the exactness contract: for identical
    configurations, the incremental and batch paths of a solver answer
    every query identically, bit for bit.
    """

    @abc.abstractmethod
    def reinit(self, configuration: Any) -> None:
        """Bind the path to a new configuration (start, restart, reset)."""


def resolve_evaluation_path(
    mode: str,
    *,
    describe: str,
    incremental: Callable[[], EvaluationPath | None],
    batch: Callable[[], EvaluationPath],
    incremental_requirement: str = "incremental evaluator",
    prefer_incremental: bool = True,
) -> EvaluationPath:
    """Pick the evaluation path mandated by ``mode``.

    Parameters
    ----------
    mode:
        ``"auto"``, ``"incremental"`` or ``"batch"``.
    describe:
        Instance label used in the error message when ``"incremental"`` is
        demanded but unavailable.
    incremental:
        Factory returning the incremental path, or ``None`` when the
        problem has no incremental kernel.  Only called for ``"auto"`` and
        ``"incremental"``.
    batch:
        Factory for the batch (oracle) path.
    incremental_requirement:
        Human name of the missing kernel for the error message (e.g.
        ``"DeltaEvaluator"``).
    prefer_incremental:
        ``"auto"``'s verdict for this instance: solvers pass ``False`` when
        the measured crossover says the batch path wins at this instance
        size (see ``AdaptiveSearchConfig.evaluation``).  ``"incremental"``
        and ``"batch"`` ignore it — explicit modes are never second-guessed.
    """
    validate_evaluation_mode(mode)
    if mode == "batch":
        return batch()
    if mode == "auto" and not prefer_incremental:
        # Don't even build the incremental kernel (that can be the costly
        # part at the small sizes where the batch path wins).
        return batch()
    path = incremental()
    if path is None:
        if mode == "incremental":
            raise ValueError(
                f"{describe} provides no {incremental_requirement}; "
                "use evaluation='auto' or 'batch'"
            )
        return batch()
    return path


class IncrementalState:
    """Mutable incremental-evaluation state bound to one configuration.

    Subclasses add the configuration itself and the counters the evaluator
    maintains; the base class only fixes the one attribute every consumer
    relies on:

    Attributes
    ----------
    cost:
        The *exact* global error of the attached configuration (number of
        violated constraints / unsatisfied clauses).  Kept in exact
        arithmetic so it is bit-identical to the batch oracle's value.
    """

    cost: int | float


class IncrementalEvaluator(abc.ABC):
    """Attach/commit/reset lifecycle shared by every incremental kernel.

    An evaluator is immutable per problem instance; all mutable run state
    lives in the :class:`IncrementalState` it attaches, so one evaluator can
    serve many concurrent runs.  Commit operations are kernel-specific
    (``commit_swap`` for the permutation kernels, ``flip`` for the SAT
    clause state) and therefore live on the subclasses.
    """

    @abc.abstractmethod
    def attach(self, configuration: Any) -> IncrementalState:
        """Build the incremental state for a configuration (copies it)."""

    def reset(self, state: IncrementalState, configuration: Any) -> None:
        """Rebind ``state`` to a new configuration (restart / partial reset)."""
        state.__dict__.update(self.attach(configuration).__dict__)
