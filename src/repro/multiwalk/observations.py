"""Container for batches of sequential run observations.

:class:`RuntimeObservations` is the interchange format between the solver
layer (which produces runs), the statistics layer (Tables 1–2, fitting) and
the prediction layer.  It stores, per run: iteration count, wall-clock time,
whether the run solved the instance within its budget, and the seed — enough
to replay or censor runs, and to serialise batches to JSON so that expensive
solver campaigns can be cached between experiments.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.solvers.base import RunResult

__all__ = ["RuntimeObservations"]


@dataclasses.dataclass(frozen=True)
class RuntimeObservations:
    """Immutable batch of independent sequential runs of one algorithm.

    Attributes
    ----------
    label:
        Name of the algorithm/instance the runs belong to (e.g. ``"AI 700"``).
    iterations:
        Iteration count of each run.
    runtimes:
        Wall-clock seconds of each run.
    solved:
        Whether each run terminated with a solution within its budget.
    seeds:
        Seed of each run (-1 when unknown).
    """

    label: str
    iterations: np.ndarray
    runtimes: np.ndarray
    solved: np.ndarray
    seeds: np.ndarray

    def __post_init__(self) -> None:
        iterations = np.asarray(self.iterations, dtype=float)
        runtimes = np.asarray(self.runtimes, dtype=float)
        solved = np.asarray(self.solved, dtype=bool)
        seeds = np.asarray(self.seeds, dtype=np.int64)
        sizes = {iterations.size, runtimes.size, solved.size, seeds.size}
        if len(sizes) != 1:
            raise ValueError(f"field lengths differ: {sizes}")
        if iterations.size == 0:
            raise ValueError("an observation batch must contain at least one run")
        if np.any(iterations < 0) or np.any(runtimes < 0):
            raise ValueError("iteration counts and runtimes must be non-negative")
        object.__setattr__(self, "iterations", iterations)
        object.__setattr__(self, "runtimes", runtimes)
        object.__setattr__(self, "solved", solved)
        object.__setattr__(self, "seeds", seeds)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_results(cls, label: str, results: Iterable[RunResult]) -> "RuntimeObservations":
        """Build a batch from :class:`RunResult` records."""
        results = list(results)
        if not results:
            raise ValueError("an observation batch must contain at least one run")
        return cls(
            label=label,
            iterations=np.array([r.iterations for r in results], dtype=float),
            runtimes=np.array([r.runtime_seconds for r in results], dtype=float),
            solved=np.array([r.solved for r in results], dtype=bool),
            seeds=np.array(
                [r.seed if r.seed is not None else -1 for r in results], dtype=np.int64
            ),
        )

    @classmethod
    def from_values(
        cls,
        label: str,
        values: Sequence[float] | np.ndarray,
        *,
        measure: str = "iterations",
    ) -> "RuntimeObservations":
        """Build a batch from raw cost values (all runs assumed solved).

        Useful for feeding synthetic samples or externally measured runtimes
        into the prediction pipeline.
        """
        data = np.asarray(values, dtype=float).ravel()
        zeros = np.zeros_like(data)
        iterations = data if measure == "iterations" else zeros
        runtimes = data if measure == "time" else zeros
        if measure not in {"iterations", "time"}:
            raise ValueError(f"unknown measure {measure!r}")
        return cls(
            label=label,
            iterations=iterations,
            runtimes=runtimes,
            solved=np.ones(data.size, dtype=bool),
            seeds=np.full(data.size, -1, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n_runs(self) -> int:
        return int(self.iterations.size)

    @property
    def n_solved(self) -> int:
        return int(self.solved.sum())

    def success_rate(self) -> float:
        """Fraction of runs that solved the instance within their budget."""
        return self.n_solved / self.n_runs

    def values(self, measure: str = "iterations", *, solved_only: bool = True) -> np.ndarray:
        """Cost values under the requested measure.

        Unsolved runs are censored observations (the run was cut by its
        budget); by default they are excluded, matching the paper's protocol
        where every counted run reached a solution.
        """
        if measure == "iterations":
            data = self.iterations
        elif measure == "time":
            data = self.runtimes
        else:
            raise ValueError(f"unknown measure {measure!r}; use 'iterations' or 'time'")
        if solved_only:
            data = data[self.solved]
            if data.size == 0:
                raise ValueError(f"no solved runs in batch {self.label!r}")
        return data.copy()

    def __len__(self) -> int:
        return self.n_runs

    def __iter__(self) -> Iterator[tuple[float, float, bool]]:
        return iter(zip(self.iterations, self.runtimes, self.solved))

    # ------------------------------------------------------------------
    # Combination and persistence
    # ------------------------------------------------------------------
    def extend(self, other: "RuntimeObservations") -> "RuntimeObservations":
        """Concatenate two batches (labels must match)."""
        if other.label != self.label:
            raise ValueError(f"cannot merge batches with labels {self.label!r} and {other.label!r}")
        return RuntimeObservations(
            label=self.label,
            iterations=np.concatenate([self.iterations, other.iterations]),
            runtimes=np.concatenate([self.runtimes, other.runtimes]),
            solved=np.concatenate([self.solved, other.solved]),
            seeds=np.concatenate([self.seeds, other.seeds]),
        )

    def subset(self, indices: Sequence[int] | np.ndarray) -> "RuntimeObservations":
        """Select a subset of runs by index (used by ablation studies)."""
        idx = np.asarray(indices, dtype=int)
        return RuntimeObservations(
            label=self.label,
            iterations=self.iterations[idx],
            runtimes=self.runtimes[idx],
            solved=self.solved[idx],
            seeds=self.seeds[idx],
        )

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "label": self.label,
            "iterations": self.iterations.tolist(),
            "runtimes": self.runtimes.tolist(),
            "solved": self.solved.tolist(),
            "seeds": self.seeds.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RuntimeObservations":
        return cls(
            label=str(payload["label"]),
            iterations=np.asarray(payload["iterations"], dtype=float),
            runtimes=np.asarray(payload["runtimes"], dtype=float),
            solved=np.asarray(payload["solved"], dtype=bool),
            seeds=np.asarray(payload["seeds"], dtype=np.int64),
        )

    def save(self, path: str | Path) -> None:
        """Write the batch to a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "RuntimeObservations":
        """Read a batch previously written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))
