"""Simulated independent multi-walk execution.

The paper measured its "experimental" speed-ups on a 256-core cluster by
running the same code with ``k`` communicating-free walks and averaging 50
parallel runs.  An independent multi-walk exchanges no information between
walks, so its runtime is *exactly* the minimum of ``k`` independent
sequential runtimes; this module therefore measures speed-ups by grouping
independent sequential observations into blocks of ``k`` and averaging the
block minima — the documented hardware substitution of this reproduction
(see DESIGN.md §4).

Two sampling modes are provided:

``mode="blocks"``
    Partition fresh, disjoint observations into blocks (unbiased, mirrors
    a real cluster campaign but needs ``k × n_parallel_runs`` observations).
``mode="resample"``
    Bootstrap blocks by resampling the observations with replacement
    (works with any sample size, slight bias for very small samples).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.multiwalk.observations import RuntimeObservations

__all__ = [
    "MultiwalkMeasurement",
    "simulate_multiwalk_from_observations",
    "simulate_multiwalk_speedups",
]

#: Core counts reported throughout the paper's evaluation tables.
PAPER_CORE_COUNTS: tuple[int, ...] = (16, 32, 64, 128, 256)


@dataclasses.dataclass(frozen=True)
class MultiwalkMeasurement:
    """Measured (simulated) multi-walk performance for a set of core counts."""

    label: str
    measure: str
    cores: tuple[int, ...]
    mean_parallel_cost: tuple[float, ...]
    speedups: tuple[float, ...]
    sequential_mean: float
    n_parallel_runs: int

    def as_dict(self) -> dict[int, float]:
        """Core count -> measured speed-up."""
        return dict(zip(self.cores, self.speedups))

    def speedup(self, n_cores: int) -> float:
        try:
            return self.as_dict()[int(n_cores)]
        except KeyError:
            raise KeyError(f"no measurement for {n_cores} cores (have {self.cores})") from None

    def __iter__(self):
        return iter(zip(self.cores, self.speedups))


def _block_minima_resample(
    values: np.ndarray, n_cores: int, n_blocks: int, rng: np.random.Generator
) -> np.ndarray:
    """Minima of ``n_blocks`` blocks of ``n_cores`` values drawn with replacement."""
    draws = rng.choice(values, size=(n_blocks, n_cores), replace=True)
    return draws.min(axis=1)


def _block_minima_partition(values: np.ndarray, n_cores: int, rng: np.random.Generator) -> np.ndarray:
    """Minima of disjoint blocks of a shuffled copy of ``values``.

    Uses as many complete blocks as the sample allows; requires at least one
    complete block.
    """
    if values.size < n_cores:
        raise ValueError(
            f"need at least {n_cores} observations for one block, have {values.size}; "
            "use mode='resample' or collect more runs"
        )
    shuffled = rng.permutation(values)
    n_blocks = shuffled.size // n_cores
    blocks = shuffled[: n_blocks * n_cores].reshape(n_blocks, n_cores)
    return blocks.min(axis=1)


def simulate_multiwalk_from_observations(
    values: Sequence[float] | np.ndarray,
    cores: Sequence[int] = PAPER_CORE_COUNTS,
    *,
    n_parallel_runs: int = 50,
    mode: str = "resample",
    rng: np.random.Generator | None = None,
    label: str = "observations",
    measure: str = "iterations",
) -> MultiwalkMeasurement:
    """Measure multi-walk speed-ups by simulating first-finisher-wins blocks.

    Parameters
    ----------
    values:
        Sequential cost observations (iteration counts or seconds).
    cores:
        Core counts to simulate (defaults to the paper's 16…256).
    n_parallel_runs:
        Number of simulated parallel executions per core count (the paper
        averages 50 parallel runs); only used in ``resample`` mode — in
        ``blocks`` mode the sample size dictates the number of blocks.
    mode:
        ``"resample"`` (bootstrap blocks) or ``"blocks"`` (disjoint blocks).
    rng:
        Random generator (fresh default when omitted).
    label, measure:
        Metadata copied into the returned measurement.
    """
    data = np.asarray(values, dtype=float).ravel()
    if data.size == 0:
        raise ValueError("simulation needs at least one observation")
    core_list = [int(c) for c in cores]
    if not core_list or any(c < 1 for c in core_list):
        raise ValueError(f"core counts must be positive integers, got {cores!r}")
    if n_parallel_runs < 1:
        raise ValueError(f"n_parallel_runs must be >= 1, got {n_parallel_runs}")
    if mode not in {"resample", "blocks"}:
        raise ValueError(f"unknown mode {mode!r}; use 'resample' or 'blocks'")
    generator = rng if rng is not None else np.random.default_rng()

    sequential_mean = float(data.mean())
    means: list[float] = []
    speedups: list[float] = []
    for n_cores in core_list:
        # One core is an ordinary block size of 1: the measurement must come
        # from the same sampling scheme (and sample size) as every other
        # core count, otherwise the 1-core point of a speed-up curve is
        # estimated from a different number of simulated parallel runs.
        if mode == "resample":
            minima = _block_minima_resample(data, n_cores, n_parallel_runs, generator)
        else:
            minima = _block_minima_partition(data, n_cores, generator)
        mean_cost = float(minima.mean())
        means.append(mean_cost)
        speedups.append(sequential_mean / mean_cost if mean_cost > 0 else float("inf"))
    return MultiwalkMeasurement(
        label=label,
        measure=measure,
        cores=tuple(core_list),
        mean_parallel_cost=tuple(means),
        speedups=tuple(speedups),
        sequential_mean=sequential_mean,
        n_parallel_runs=n_parallel_runs,
    )


def simulate_multiwalk_speedups(
    observations: RuntimeObservations | Sequence[float] | np.ndarray,
    cores: Sequence[int] = PAPER_CORE_COUNTS,
    *,
    measure: str = "iterations",
    n_parallel_runs: int = 50,
    mode: str = "resample",
    rng: np.random.Generator | None = None,
) -> MultiwalkMeasurement:
    """Convenience wrapper accepting either a batch or raw cost values."""
    if isinstance(observations, RuntimeObservations):
        values = observations.values(measure)
        label = observations.label
    else:
        values = np.asarray(observations, dtype=float)
        label = "observations"
    return simulate_multiwalk_from_observations(
        values,
        cores,
        n_parallel_runs=n_parallel_runs,
        mode=mode,
        rng=rng,
        label=label,
        measure=measure,
    )
