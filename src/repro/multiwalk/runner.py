"""Sequential batch collection of independent runs.

The paper collected roughly 650 sequential runs per benchmark on the
Grid'5000 Griffon cluster; :func:`run_sequential_batch` is the equivalent
driver here.  Seeds are derived deterministically from a base seed with
:class:`numpy.random.SeedSequence` so that batches are reproducible and runs
remain statistically independent.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.multiwalk.observations import RuntimeObservations
from repro.solvers.base import LasVegasAlgorithm, RunResult

__all__ = ["collect_observations", "run_sequential_batch"]


def _spawn_seeds(base_seed: int, n_runs: int) -> list[int]:
    """Derive ``n_runs`` independent integer seeds from one base seed."""
    seq = np.random.SeedSequence(base_seed)
    return [int(s.generate_state(1)[0]) for s in seq.spawn(n_runs)]


def run_sequential_batch(
    algorithm: LasVegasAlgorithm,
    n_runs: int,
    *,
    base_seed: int = 0,
    label: str | None = None,
    progress: Callable[[int, RunResult], None] | None = None,
) -> RuntimeObservations:
    """Run ``algorithm`` ``n_runs`` times with independent seeds.

    Parameters
    ----------
    algorithm:
        The Las Vegas algorithm to benchmark.
    n_runs:
        Number of independent sequential runs (the paper uses ~650).
    base_seed:
        Seed of the seed sequence from which per-run seeds are derived.
    label:
        Batch label; defaults to the algorithm's name.
    progress:
        Optional callback invoked after every run with ``(index, result)`` —
        handy for long campaigns driven from the CLI.
    """
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    seeds = _spawn_seeds(base_seed, n_runs)
    results: list[RunResult] = []
    for index, seed in enumerate(seeds):
        result = algorithm.run(seed)
        results.append(result)
        if progress is not None:
            progress(index, result)
    return RuntimeObservations.from_results(label or algorithm.describe(), results)


def collect_observations(
    algorithms: Sequence[LasVegasAlgorithm],
    n_runs: int,
    *,
    base_seed: int = 0,
) -> dict[str, RuntimeObservations]:
    """Run a batch for each algorithm and return batches keyed by label.

    Every algorithm gets its own derived base seed so adding or removing an
    algorithm from the list does not perturb the others' runs.
    """
    if not algorithms:
        raise ValueError("at least one algorithm is required")
    seq = np.random.SeedSequence(base_seed)
    children = seq.spawn(len(algorithms))
    batches: dict[str, RuntimeObservations] = {}
    for algorithm, child in zip(algorithms, children):
        child_seed = int(child.generate_state(1)[0])
        batch = run_sequential_batch(algorithm, n_runs, base_seed=child_seed)
        batches[batch.label] = batch
    return batches
