"""Batch collection of independent runs (thin shim over the engine).

The paper collected roughly 650 sequential runs per benchmark on the
Grid'5000 Griffon cluster; :func:`run_sequential_batch` is the equivalent
driver here.  Execution is delegated to :func:`repro.engine.collect_batch`:
seeds are derived deterministically from a base seed with the shared
:func:`repro.engine.seeding.spawn_seeds` primitive so batches are
reproducible, runs remain statistically independent, and the same campaign
can be collected serially or on the thread/process backends with
bit-identical iteration counts.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Sequence

from repro.engine.backends import BatchExecutor
from repro.engine.cache import ObservationCache
from repro.engine.core import collect_batch
from repro.engine.progress import BatchProgress
from repro.engine.seeding import spawn_seeds
from repro.multiwalk.observations import RuntimeObservations
from repro.solvers.base import LasVegasAlgorithm, RunResult

__all__ = ["collect_observations", "run_sequential_batch"]


def run_sequential_batch(
    algorithm: LasVegasAlgorithm,
    n_runs: int,
    *,
    base_seed: int = 0,
    label: str | None = None,
    progress: Callable[[int, RunResult], None] | None = None,
    backend: str | BatchExecutor | None = None,
    workers: int | None = None,
    cache: ObservationCache | str | Path | None = None,
) -> RuntimeObservations:
    """Run ``algorithm`` ``n_runs`` times with independent seeds.

    Parameters
    ----------
    algorithm:
        The Las Vegas algorithm to benchmark.
    n_runs:
        Number of independent runs (the paper uses ~650).
    base_seed:
        Seed of the seed sequence from which per-run seeds are derived.
    label:
        Batch label; defaults to the algorithm's name.
    progress:
        Optional callback invoked after every run with ``(index, result)`` —
        handy for long campaigns driven from the CLI.  For the richer
        structured events use :func:`repro.engine.collect_batch` directly.
    backend, workers:
        Execution backend (``"serial"`` by default, the historical
        behaviour) and worker count; see :mod:`repro.engine.backends`.
    cache:
        Optional on-disk observation cache (or directory path); see
        :class:`repro.engine.ObservationCache`.
    """
    structured = None
    if progress is not None:
        callback = progress

        def structured(event: BatchProgress) -> None:
            callback(event.index, event.result)

    return collect_batch(
        algorithm,
        n_runs,
        base_seed=base_seed,
        label=label,
        backend=backend,
        workers=workers,
        progress=structured,
        cache=cache,
    )


def collect_observations(
    algorithms: Sequence[LasVegasAlgorithm],
    n_runs: int,
    *,
    base_seed: int = 0,
    backend: str | BatchExecutor | None = None,
    workers: int | None = None,
    cache: ObservationCache | str | Path | None = None,
) -> dict[str, RuntimeObservations]:
    """Run a batch for each algorithm and return batches keyed by label.

    Every algorithm gets its own derived base seed so adding or removing an
    algorithm from the list does not perturb the others' runs.
    """
    if not algorithms:
        raise ValueError("at least one algorithm is required")
    child_seeds = spawn_seeds(base_seed, len(algorithms))
    batches: dict[str, RuntimeObservations] = {}
    for algorithm, child_seed in zip(algorithms, child_seeds):
        batch = run_sequential_batch(
            algorithm,
            n_runs,
            base_seed=child_seed,
            backend=backend,
            workers=workers,
            cache=cache,
        )
        batches[batch.label] = batch
    return batches
