"""Multi-walk execution substrate (Definition 2 of the paper).

An independent multi-walk runs ``n`` copies of a Las Vegas algorithm with
independent random streams and stops as soon as the first copy finds a
solution.  This package provides three ways to realise it:

* :mod:`repro.multiwalk.runner` — sequential batch collection of
  independent runs (the raw material for Tables 1–2 and for fitting).
* :mod:`repro.multiwalk.simulate` — the *simulated* multi-walk: group
  independent sequential runs into blocks of ``n`` and keep each block's
  minimum.  Because an independent multi-walk involves no communication,
  this is behaviourally identical to a parallel execution and is how the
  reproduction stands in for the paper's 256-core cluster.
* :mod:`repro.multiwalk.parallel` — a real first-finisher-wins executor
  for modest core counts, racing walks through the execution engine
  (:mod:`repro.engine`).

All run collection is delegated to :mod:`repro.engine`, so the serial,
thread and process backends produce bit-identical iteration counts for a
given base seed.
"""

from repro.multiwalk.observations import RuntimeObservations
from repro.multiwalk.parallel import MultiWalkExecutor, emulate_multiwalk
from repro.multiwalk.runner import collect_observations, run_sequential_batch
from repro.multiwalk.simulate import (
    MultiwalkMeasurement,
    simulate_multiwalk_from_observations,
    simulate_multiwalk_speedups,
)

__all__ = [
    "MultiWalkExecutor",
    "MultiwalkMeasurement",
    "RuntimeObservations",
    "collect_observations",
    "emulate_multiwalk",
    "run_sequential_batch",
    "simulate_multiwalk_from_observations",
    "simulate_multiwalk_speedups",
]
