"""Real multi-walk execution (first finisher wins).

Two realisations are provided:

* :func:`emulate_multiwalk` runs the ``n`` walks one after another in the
  current process and reports the minimum cost.  In iteration count this is
  *exactly* what a parallel run would measure (the walks do not interact);
  only the wall-clock figure is an emulation.
* :class:`MultiWalkExecutor` races the walks through the execution engine
  (:func:`repro.engine.run_race`) and returns as soon as the first solution
  arrives, mirroring the kill-all-others protocol of Definition 2.  It is
  intended for modest core counts on a real machine; the large-scale
  experiments use the block-minimum simulation in
  :mod:`repro.multiwalk.simulate`.

Both report two distinct wall-clock figures: the race/emulation total
(``wall_clock_seconds``) and the winning walk's own duration
(``walk_wall_clock_seconds``), which is the physically meaningful cost of a
genuinely parallel execution.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import time

from repro.engine.backends import ProcessBackend, SerialBackend
from repro.engine.core import run_race
from repro.engine.seeding import spawn_seeds
from repro.solvers.base import LasVegasAlgorithm, RunResult

__all__ = ["MultiWalkExecutor", "MultiwalkRunOutcome", "emulate_multiwalk"]


@dataclasses.dataclass(frozen=True)
class MultiwalkRunOutcome:
    """Outcome of one multi-walk execution on ``n_walks`` walks.

    ``wall_clock_seconds`` is the duration of the whole race (launch to
    cancellation) on whatever substrate ran it; ``walk_wall_clock_seconds``
    is the winning walk's own duration — what an ideal parallel execution
    with one core per walk would have measured.
    """

    n_walks: int
    winner_result: RunResult
    winner_index: int
    wall_clock_seconds: float
    min_iterations: int
    walk_wall_clock_seconds: float = float("nan")

    @property
    def solved(self) -> bool:
        return self.winner_result.solved


def emulate_multiwalk(
    algorithm: LasVegasAlgorithm,
    n_walks: int,
    *,
    base_seed: int = 0,
) -> MultiwalkRunOutcome:
    """Emulate one ``n_walks``-core multi-walk by sequential execution.

    All walks are run to completion and the one with the fewest iterations
    is declared the winner — identical in distribution (for the iteration
    measure) to a genuinely parallel first-finisher-wins execution.
    """
    if n_walks < 1:
        raise ValueError(f"n_walks must be >= 1, got {n_walks}")
    start = time.perf_counter()
    seeds = spawn_seeds(base_seed, n_walks)
    results = [algorithm.run(seed) for seed in seeds]
    elapsed = time.perf_counter() - start
    solved_indices = [i for i, r in enumerate(results) if r.solved]
    candidates = solved_indices if solved_indices else range(len(results))
    winner_index = min(candidates, key=lambda i: (results[i].iterations, i))
    winner = results[winner_index]
    return MultiwalkRunOutcome(
        n_walks=n_walks,
        winner_result=winner,
        winner_index=winner_index,
        wall_clock_seconds=elapsed,
        min_iterations=int(winner.iterations),
        walk_wall_clock_seconds=float(winner.runtime_seconds),
    )


class MultiWalkExecutor:
    """Process-based independent multi-walk (Definition 2 of the paper).

    Parameters
    ----------
    algorithm:
        The Las Vegas algorithm to parallelise.  It must be picklable (all
        solvers in this package are).
    n_walks:
        Number of concurrent walks.
    n_processes:
        Worker processes to use; defaults to ``min(n_walks, cpu_count)``.
        When fewer processes than walks are available the remaining walks
        are queued, which preserves correctness (the first solved walk still
        wins) at the cost of wall-clock fidelity.  With ``n_processes=1``
        the walks run serially through the same race protocol — same winner
        semantics, same ``wall_clock_seconds`` meaning (time until the race
        is decided), just without pool overhead.
    """

    def __init__(
        self,
        algorithm: LasVegasAlgorithm,
        n_walks: int,
        *,
        n_processes: int | None = None,
    ) -> None:
        if n_walks < 1:
            raise ValueError(f"n_walks must be >= 1, got {n_walks}")
        self.algorithm = algorithm
        self.n_walks = int(n_walks)
        cpu = mp.cpu_count()
        self.n_processes = int(n_processes) if n_processes is not None else min(self.n_walks, cpu)
        if self.n_processes < 1:
            raise ValueError(f"n_processes must be >= 1, got {self.n_processes}")

    def run(self, base_seed: int = 0) -> MultiwalkRunOutcome:
        """Execute one multi-walk; the first *solved* walk to finish wins.

        If no walk solves within its budget, the completed walk with the
        fewest iterations wins, ties broken by lowest walk index (a
        deterministic rule regardless of completion order).
        """
        backend = (
            SerialBackend()
            if self.n_processes == 1
            else ProcessBackend(workers=self.n_processes)
        )
        outcome = run_race(
            self.algorithm,
            self.n_walks,
            base_seed=base_seed,
            backend=backend,
        )
        return MultiwalkRunOutcome(
            n_walks=self.n_walks,
            winner_result=outcome.winner_result,
            winner_index=outcome.winner_index,
            wall_clock_seconds=outcome.wall_clock_seconds,
            min_iterations=int(outcome.winner_result.iterations),
            walk_wall_clock_seconds=float(outcome.winner_result.runtime_seconds),
        )

    def measure_speedup(
        self,
        sequential_mean_seconds: float,
        *,
        n_repeats: int = 5,
        base_seed: int = 0,
    ) -> float:
        """Average wall-clock speed-up over ``n_repeats`` multi-walk executions."""
        if n_repeats < 1:
            raise ValueError(f"n_repeats must be >= 1, got {n_repeats}")
        seeds = spawn_seeds(base_seed, n_repeats)
        total = 0.0
        for seed in seeds:
            outcome = self.run(base_seed=seed)
            total += outcome.wall_clock_seconds
        mean_parallel = total / n_repeats
        if mean_parallel <= 0.0:
            return float("inf")
        return sequential_mean_seconds / mean_parallel
