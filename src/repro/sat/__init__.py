"""Boolean satisfiability substrate.

The paper's conclusion names SAT solvers (algorithm portfolios in the SAT
community are the multi-walk scheme under another name) as the next target
for the prediction model.  This package provides the substrate needed to
exercise that claim offline: CNF formulas, a random k-SAT generator with a
controllable clause-to-variable ratio, and a planted-solution generator that
guarantees satisfiability (so WalkSAT runs are proper Las Vegas runs that
terminate with probability one).
"""

from repro.sat.cnf import CNFFormula, Clause
from repro.sat.dimacs import (
    DEFAULT_INSTANCE,
    bundled_instance_names,
    bundled_instance_path,
    load_bundled_instance,
)
from repro.sat.generators import (
    clause_count_for_ratio,
    random_ksat,
    random_ksat_at_ratio,
    random_planted_ksat,
)
from repro.sat.incremental import (
    BatchClausePath,
    ClauseEvaluator,
    ClausePath,
    ClauseState,
    IncrementalClausePath,
)
from repro.sat.vectorized import LockstepClauseState, LockstepEvaluator

__all__ = [
    "BatchClausePath",
    "CNFFormula",
    "Clause",
    "ClauseEvaluator",
    "ClausePath",
    "ClauseState",
    "DEFAULT_INSTANCE",
    "IncrementalClausePath",
    "LockstepClauseState",
    "LockstepEvaluator",
    "bundled_instance_names",
    "bundled_instance_path",
    "clause_count_for_ratio",
    "load_bundled_instance",
    "random_ksat",
    "random_ksat_at_ratio",
    "random_planted_ksat",
]
