"""Boolean satisfiability substrate.

The paper's conclusion names SAT solvers (algorithm portfolios in the SAT
community are the multi-walk scheme under another name) as the next target
for the prediction model.  This package provides the substrate needed to
exercise that claim offline: CNF formulas, a random k-SAT generator with a
controllable clause-to-variable ratio, and a planted-solution generator that
guarantees satisfiability (so WalkSAT runs are proper Las Vegas runs that
terminate with probability one).
"""

from repro.sat.cnf import CNFFormula, Clause
from repro.sat.generators import random_ksat, random_planted_ksat
from repro.sat.incremental import (
    BatchClausePath,
    ClauseEvaluator,
    ClausePath,
    ClauseState,
    IncrementalClausePath,
)

__all__ = [
    "BatchClausePath",
    "CNFFormula",
    "Clause",
    "ClauseEvaluator",
    "ClausePath",
    "ClauseState",
    "IncrementalClausePath",
    "random_ksat",
    "random_planted_ksat",
]
