"""Incremental clause state for stochastic local search on CNF formulas.

The WalkSAT hot loop asks three questions per flip: *which clauses are
unsatisfied?*, *what is the break count of each variable of the picked
clause?*, and *what changes when the chosen variable flips?*.  The batch
answers rebuild the full ``(n_clauses, width)`` literal matrix for every
question — O(m·w) per query and O(k·m·w) per flip.  This module answers all
three from counters maintained across flips, mirroring the CSP
:class:`~repro.csp.permutation.DeltaEvaluator` design (PR 2):

* :class:`ClauseEvaluator` — per-formula immutable precomputation: for each
  variable, the (ascending) list of clauses it occurs in together with its
  positive/negative literal multiplicities there.  Shared by every run on
  the formula (memoised via :meth:`repro.sat.cnf.CNFFormula.clause_evaluator`).
* :class:`ClauseState` — per-run mutable state: the assignment, the number
  of true literals per clause, and the unsatisfied-clause set as a dynamic
  array with O(1) membership updates (swap-remove with a position table).
  One flip costs O(occurrences of the flipped variable), amortised O(1)
  bookkeeping per clause transition.
* :class:`IncrementalClausePath` / :class:`BatchClausePath` — the two
  interchangeable :class:`~repro.evaluation.EvaluationPath` implementations
  WalkSAT consumes.  The batch path recomputes satisfaction from scratch
  through :meth:`CNFFormula.clause_satisfaction` (the cross-check oracle)
  but applies *identical* unsatisfied-set edits, so for a given seed both
  paths present the same clause at the same rank and the solver takes
  bit-identical decisions on either.

Exactness contract (pinned by ``tests/sat/test_incremental.py``): after any
sequence of flips and resets, ``state.true_counts`` equals
``formula.true_literal_counts(assignment)``, ``break_count``/``make_count``
equal :meth:`CNFFormula.break_count`/:meth:`CNFFormula.make_count`, and the
unsatisfied set equals ``formula.unsatisfied_clauses(assignment)`` as a set
— with identical internal ordering on both paths.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.evaluation import EvaluationPath, IncrementalEvaluator, IncrementalState
from repro.sat.cnf import CNFFormula

__all__ = [
    "BatchClausePath",
    "ClauseEvaluator",
    "ClausePath",
    "ClauseState",
    "IncrementalClausePath",
]


class ClauseState(IncrementalState):
    """Mutable incremental state of one WalkSAT run.

    Attributes
    ----------
    assignment:
        The boolean assignment the counters describe (owned copy).
    true_counts:
        ``int64`` array: number of true literal slots per clause
        (duplicate literals counted, exactly
        :meth:`CNFFormula.true_literal_counts`).
    unsat_list / unsat_pos:
        The unsatisfied-clause set as a dynamic array plus a clause-indexed
        position table (``-1`` when absent).  Maintained with deterministic
        edit rules — see :meth:`remove_clause` / :meth:`append_clause` —
        so that the incremental and batch paths keep bit-identical
        orderings.
    """

    def __init__(self, assignment: np.ndarray, true_counts: np.ndarray) -> None:
        self.assignment = assignment
        self.true_counts = true_counts
        self.unsat_list: list[int] = []
        self.unsat_pos: list[int] = [-1] * true_counts.size
        self.rebuild_unsat()

    # -- the unsatisfied-clause set ------------------------------------
    @property
    def cost(self) -> int:  # type: ignore[override]
        """Number of unsatisfied clauses (the global error)."""
        return len(self.unsat_list)

    @property
    def n_unsat(self) -> int:
        return len(self.unsat_list)

    def unsat_clause(self, rank: int) -> int:
        """The clause stored at ``rank`` in the maintained set."""
        return self.unsat_list[rank]

    def rebuild_unsat(self) -> None:
        """Recompute the set from :attr:`true_counts`, in ascending order."""
        for clause in self.unsat_list:
            self.unsat_pos[clause] = -1
        self.unsat_list = [int(c) for c in np.flatnonzero(self.true_counts == 0)]
        for position, clause in enumerate(self.unsat_list):
            self.unsat_pos[clause] = position

    def append_clause(self, clause: int) -> None:
        """Add a newly-unsatisfied clause (appends at the end)."""
        self.unsat_pos[clause] = len(self.unsat_list)
        self.unsat_list.append(clause)

    def remove_clause(self, clause: int) -> None:
        """Remove a newly-satisfied clause (swap-remove with the last)."""
        position = self.unsat_pos[clause]
        last = self.unsat_list[-1]
        self.unsat_list[position] = last
        self.unsat_pos[last] = position
        self.unsat_list.pop()
        self.unsat_pos[clause] = -1

    def apply_transitions(self, became_sat, became_unsat) -> None:
        """Commit one flip's clause transitions, in the canonical order.

        Both arguments must be in ascending clause order; removals are
        applied before additions.  Every path implementation funnels its
        edits through here, which is what makes the internal ordering (and
        therefore the clause picked for a given RNG draw) path-invariant.
        """
        for clause in became_sat:
            self.remove_clause(int(clause))
        for clause in became_unsat:
            self.append_clause(int(clause))


class ClauseEvaluator(IncrementalEvaluator):
    """Per-formula occurrence lists driving O(occurrences) flips.

    For each variable ``v`` (0-based) three aligned arrays are stored:
    ``clauses[v]`` — the clauses containing ``v`` in ascending order,
    ``positive[v]`` / ``negative[v]`` — how many positive / negative
    literals of ``v`` each of those clauses holds (duplicates and
    tautological clauses are handled exactly).
    """

    def __init__(self, formula: CNFFormula) -> None:
        self.formula = formula
        n = formula.n_variables
        clause_lists: list[list[int]] = [[] for _ in range(n)]
        positive_lists: list[list[int]] = [[] for _ in range(n)]
        negative_lists: list[list[int]] = [[] for _ in range(n)]
        for index, clause in enumerate(formula.clauses):
            for literal in clause:
                variable = abs(literal) - 1
                occurrences = clause_lists[variable]
                if not occurrences or occurrences[-1] != index:
                    occurrences.append(index)
                    positive_lists[variable].append(0)
                    negative_lists[variable].append(0)
                if literal > 0:
                    positive_lists[variable][-1] += 1
                else:
                    negative_lists[variable][-1] += 1
        self.clauses = [np.asarray(c, dtype=np.int64) for c in clause_lists]
        self.positive = [np.asarray(p, dtype=np.int64) for p in positive_lists]
        self.negative = [np.asarray(m, dtype=np.int64) for m in negative_lists]

    # ------------------------------------------------------------------
    def attach(self, assignment: np.ndarray) -> ClauseState:
        """Build the incremental state for an assignment (copies it)."""
        assignment = np.asarray(assignment, dtype=bool).copy()
        return ClauseState(assignment, self.formula.true_literal_counts(assignment))

    def _contributions(self, state: ClauseState, variable: int):
        """Current / after-flip true-literal contributions of ``variable``."""
        if state.assignment[variable]:
            return self.positive[variable], self.negative[variable]
        return self.negative[variable], self.positive[variable]

    def break_count(self, state: ClauseState, variable: int) -> int:
        """Satisfied clauses that flipping ``variable`` would unsatisfy.

        A clause breaks iff the variable contributes *every* currently-true
        literal (``counts == current > 0``) and contributes none after the
        flip (``new == 0``).  Exactly :meth:`CNFFormula.break_count`.
        """
        current, new = self._contributions(state, variable)
        counts = state.true_counts[self.clauses[variable]]
        return int(np.count_nonzero((counts == current) & (current > 0) & (new == 0)))

    def make_count(self, state: ClauseState, variable: int) -> int:
        """Unsatisfied clauses that flipping ``variable`` would satisfy."""
        current, new = self._contributions(state, variable)
        counts = state.true_counts[self.clauses[variable]]
        return int(np.count_nonzero((counts == 0) & (new > 0)))

    def flip(self, state: ClauseState, variable: int) -> None:
        """Flip ``variable``: update counts and the unsatisfied set.

        O(occurrences of ``variable``); the occurrence arrays are ascending,
        so the transition lists handed to
        :meth:`ClauseState.apply_transitions` are ascending too — the same
        order the batch oracle derives from ``np.flatnonzero``.
        """
        indices = self.clauses[variable]
        current, new = self._contributions(state, variable)
        counts = state.true_counts[indices]
        updated = counts + (new - current)
        state.true_counts[indices] = updated
        state.assignment[variable] = not state.assignment[variable]
        state.apply_transitions(
            indices[(counts == 0) & (updated > 0)],
            indices[(counts > 0) & (updated == 0)],
        )


class ClausePath(EvaluationPath):
    """Query surface WalkSAT's hot loop consumes, shared by both paths."""

    @property
    @abc.abstractmethod
    def assignment(self) -> np.ndarray:
        """The current assignment (owned by the path)."""

    @property
    @abc.abstractmethod
    def n_unsat(self) -> int:
        """Number of unsatisfied clauses."""

    @abc.abstractmethod
    def unsat_clause(self, rank: int) -> int:
        """The clause at ``rank`` in the maintained unsatisfied set."""

    @abc.abstractmethod
    def break_count(self, variable: int) -> int:
        """WalkSAT break score of ``variable`` under the current assignment."""

    @abc.abstractmethod
    def make_count(self, variable: int) -> int:
        """WalkSAT make score of ``variable`` (used by the Novelty family)."""

    @abc.abstractmethod
    def flip(self, variable: int) -> None:
        """Flip ``variable`` and update the maintained state."""


class IncrementalClausePath(ClausePath):
    """Counter-maintained path: O(occurrences of the flipped variable) per flip."""

    def __init__(self, evaluator: ClauseEvaluator) -> None:
        self._evaluator = evaluator
        self._state: ClauseState | None = None

    @property
    def assignment(self) -> np.ndarray:
        return self._state.assignment

    @property
    def n_unsat(self) -> int:
        return self._state.n_unsat

    def reinit(self, assignment: np.ndarray) -> None:
        if self._state is None:
            self._state = self._evaluator.attach(assignment)
        else:
            self._evaluator.reset(self._state, assignment)

    def unsat_clause(self, rank: int) -> int:
        return self._state.unsat_clause(rank)

    def break_count(self, variable: int) -> int:
        return self._evaluator.break_count(self._state, variable)

    def make_count(self, variable: int) -> int:
        return self._evaluator.make_count(self._state, variable)

    def flip(self, variable: int) -> None:
        self._evaluator.flip(self._state, variable)


class BatchClausePath(ClausePath):
    """Oracle path: full re-evaluation per query, identical set bookkeeping.

    Break counts and clause transitions are recomputed from scratch through
    the vectorised :class:`CNFFormula` methods — this is the path whose
    correctness is obvious, kept as the cross-check oracle.  The
    unsatisfied set is maintained through the same
    :meth:`ClauseState.apply_transitions` edit rules as the incremental
    path (removals then additions, each ascending), so both paths keep
    bit-identical internal orderings.
    """

    def __init__(self, formula: CNFFormula) -> None:
        self._formula = formula
        self._state: ClauseState | None = None

    @property
    def assignment(self) -> np.ndarray:
        return self._state.assignment

    @property
    def n_unsat(self) -> int:
        return self._state.n_unsat

    def reinit(self, assignment: np.ndarray) -> None:
        assignment = np.asarray(assignment, dtype=bool).copy()
        self._state = ClauseState(assignment, self._formula.true_literal_counts(assignment))

    def unsat_clause(self, rank: int) -> int:
        return self._state.unsat_clause(rank)

    def break_count(self, variable: int) -> int:
        return self._formula.break_count(self._state.assignment, variable)

    def make_count(self, variable: int) -> int:
        return self._formula.make_count(self._state.assignment, variable)

    def flip(self, variable: int) -> None:
        state = self._state
        before = self._formula.clause_satisfaction(state.assignment)
        state.assignment[variable] = not state.assignment[variable]
        after = self._formula.clause_satisfaction(state.assignment)
        state.true_counts = self._formula.true_literal_counts(state.assignment)
        state.apply_transitions(
            np.flatnonzero(~before & after),
            np.flatnonzero(before & ~after),
        )
