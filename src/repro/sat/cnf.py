"""CNF formulas in DIMACS-style literal encoding.

Literals are non-zero integers: ``+v`` is variable ``v`` (1-based) and
``-v`` its negation.  Assignments are boolean numpy arrays indexed by
``v - 1``.  The representation is array-based so that WalkSAT's hot path
(count satisfied clauses, find unsatisfied clauses, evaluate a flip) is
vectorised.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

__all__ = ["CNFFormula", "Clause"]

#: A clause is a tuple of non-zero integer literals.
Clause = tuple[int, ...]


class CNFFormula:
    """A CNF formula over ``n_variables`` boolean variables.

    Parameters
    ----------
    n_variables:
        Number of variables (named ``1 .. n_variables``).
    clauses:
        Iterable of clauses, each a sequence of non-zero literals whose
        absolute values are at most ``n_variables``.
    """

    def __init__(self, n_variables: int, clauses: Iterable[Sequence[int]]) -> None:
        if n_variables < 1:
            raise ValueError(f"a formula needs at least one variable, got {n_variables}")
        self.n_variables = int(n_variables)
        normalised: list[Clause] = []
        for clause in clauses:
            clause = tuple(int(lit) for lit in clause)
            if not clause:
                raise ValueError("empty clauses are not allowed (they are unsatisfiable)")
            for lit in clause:
                if lit == 0 or abs(lit) > self.n_variables:
                    raise ValueError(f"literal {lit} out of range for {self.n_variables} variables")
            normalised.append(clause)
        if not normalised:
            raise ValueError("a formula needs at least one clause")
        self.clauses: tuple[Clause, ...] = tuple(normalised)
        # Rectangular literal matrix padded with zeros for vectorised evaluation.
        width = max(len(c) for c in self.clauses)
        matrix = np.zeros((len(self.clauses), width), dtype=np.int64)
        for row, clause in enumerate(self.clauses):
            matrix[row, : len(clause)] = clause
        self._literals = matrix
        self._variables = np.abs(matrix) - 1          # index -1 where padded
        self._signs = matrix > 0
        self._padding = matrix == 0

    # ------------------------------------------------------------------
    @property
    def n_clauses(self) -> int:
        return len(self.clauses)

    def clause_satisfaction(self, assignment: np.ndarray) -> np.ndarray:
        """Boolean vector: which clauses are satisfied by the assignment."""
        assignment = self._check_assignment(assignment)
        values = assignment[np.clip(self._variables, 0, self.n_variables - 1)]
        literal_true = np.where(self._signs, values, ~values)
        literal_true = np.where(self._padding, False, literal_true)
        return literal_true.any(axis=1)

    def true_literal_counts(self, assignment: np.ndarray) -> np.ndarray:
        """Number of true literal slots per clause (duplicates counted).

        A clause is satisfied iff its count is positive.  This is the
        quantity the incremental clause state maintains per flip (see
        :mod:`repro.sat.incremental`); computing it here in one vectorised
        pass gives the state its initialisation and the tests their oracle.
        """
        assignment = self._check_assignment(assignment)
        values = assignment[np.clip(self._variables, 0, self.n_variables - 1)]
        literal_true = np.where(self._signs, values, ~values)
        literal_true = np.where(self._padding, False, literal_true)
        return literal_true.sum(axis=1, dtype=np.int64)

    def count_unsatisfied(self, assignment: np.ndarray) -> int:
        """Number of clauses violated by the assignment."""
        return int((~self.clause_satisfaction(assignment)).sum())

    def unsatisfied_clauses(self, assignment: np.ndarray) -> np.ndarray:
        """Indices of the clauses violated by the assignment."""
        return np.flatnonzero(~self.clause_satisfaction(assignment))

    def is_satisfied(self, assignment: np.ndarray) -> bool:
        """Whether the assignment satisfies every clause."""
        return self.count_unsatisfied(assignment) == 0

    def break_count(self, assignment: np.ndarray, variable: int) -> int:
        """Number of currently-satisfied clauses broken by flipping ``variable``.

        ``variable`` is 0-based.  This is WalkSAT's "break" score.
        """
        assignment = self._check_assignment(assignment)
        if not 0 <= variable < self.n_variables:
            raise IndexError(f"variable index {variable} out of range")
        flipped = assignment.copy()
        flipped[variable] = ~flipped[variable]
        before = self.clause_satisfaction(assignment)
        after = self.clause_satisfaction(flipped)
        return int(np.count_nonzero(before & ~after))

    def make_count(self, assignment: np.ndarray, variable: int) -> int:
        """Number of currently-unsatisfied clauses satisfied by flipping ``variable``.

        ``variable`` is 0-based.  This is WalkSAT's "make" score, the
        complement of :meth:`break_count`.
        """
        assignment = self._check_assignment(assignment)
        if not 0 <= variable < self.n_variables:
            raise IndexError(f"variable index {variable} out of range")
        flipped = assignment.copy()
        flipped[variable] = ~flipped[variable]
        before = self.clause_satisfaction(assignment)
        after = self.clause_satisfaction(flipped)
        return int(np.count_nonzero(~before & after))

    def clause_evaluator(self):
        """Memoised incremental clause evaluator for this formula.

        Built lazily on first use (the occurrence lists take one pass over
        every literal) and cached under ``_clause_evaluator``, which
        :meth:`__getstate__` keeps out of pickles so engine-cache
        fingerprints are identical before and after a solver touched it.
        """
        from repro.sat.incremental import ClauseEvaluator

        evaluator = getattr(self, "_clause_evaluator", None)
        if evaluator is None:
            evaluator = self._clause_evaluator = ClauseEvaluator(self)
        return evaluator

    def lockstep_evaluator(self):
        """Memoised lockstep (batched multi-walk) evaluator for this formula.

        Same lifecycle as :meth:`clause_evaluator`: built lazily (padded
        rectangular occurrence arrays, one pass over every literal),
        cached under ``_lockstep_evaluator`` and kept out of pickles by
        :meth:`__getstate__`.
        """
        from repro.sat.vectorized import LockstepEvaluator

        evaluator = getattr(self, "_lockstep_evaluator", None)
        if evaluator is None:
            evaluator = self._lockstep_evaluator = LockstepEvaluator(self)
        return evaluator

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_clause_evaluator", None)
        state.pop("_lockstep_evaluator", None)
        return state

    def random_assignment(self, rng: np.random.Generator) -> np.ndarray:
        """Uniformly random truth assignment."""
        return rng.integers(0, 2, size=self.n_variables, dtype=np.int64).astype(bool)

    def _check_assignment(self, assignment: np.ndarray) -> np.ndarray:
        assignment = np.asarray(assignment, dtype=bool)
        if assignment.shape != (self.n_variables,):
            raise ValueError(
                f"assignment must have shape ({self.n_variables},), got {assignment.shape}"
            )
        return assignment

    # ------------------------------------------------------------------
    def to_dimacs(self) -> str:
        """Serialise to the standard DIMACS CNF text format."""
        lines = [f"p cnf {self.n_variables} {self.n_clauses}"]
        for clause in self.clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text: str, *, strict: bool = False) -> "CNFFormula":
        """Parse a DIMACS CNF document (comments and a header line expected).

        The clause count declared in the ``p cnf`` header is validated
        against the clauses actually parsed: a mismatch warns by default
        (plenty of real-world DIMACS files have sloppy headers) and raises
        ``ValueError`` under ``strict=True``.
        """
        n_variables: int | None = None
        declared_clauses: int | None = None
        clauses: list[list[int]] = []
        current: list[int] = []
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"malformed DIMACS header: {line!r}")
                n_variables = int(parts[2])
                declared_clauses = int(parts[3])
                continue
            for token in line.split():
                literal = int(token)
                if literal == 0:
                    if current:
                        clauses.append(current)
                        current = []
                else:
                    current.append(literal)
        if current:
            clauses.append(current)
        if n_variables is None:
            raise ValueError("missing DIMACS header line")
        if declared_clauses is not None and declared_clauses != len(clauses):
            message = (
                f"DIMACS header declares {declared_clauses} clauses "
                f"but {len(clauses)} were parsed"
            )
            if strict:
                raise ValueError(message)
            warnings.warn(message, stacklevel=2)
        return cls(n_variables, clauses)

    @classmethod
    def from_dimacs_file(cls, path: str | Path, *, strict: bool = False) -> "CNFFormula":
        """Parse a DIMACS CNF file from disk (see :meth:`from_dimacs`)."""
        return cls.from_dimacs(Path(path).read_text(), strict=strict)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CNFFormula(n_variables={self.n_variables}, n_clauses={self.n_clauses})"
