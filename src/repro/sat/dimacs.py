"""Bundled DIMACS CNF instances for the DIMACS-backed SAT workload family.

A small checked-in set of uniform random 3-SAT instances in DIMACS format,
SATLIB-style: each is a uniform draw at the named size that was kept
because it is satisfiable (the ``uf20`` pair is verified by exhaustive
enumeration, the larger ones by a WalkSAT solution — provenance is in each
file's ``c`` comment header).  They give campaigns a *fixed* instance —
unlike the generated families, two hosts need no shared RNG to agree on
the formula — and they exercise :meth:`CNFFormula.from_dimacs_file` on the
real workload path, not just in parser tests.

The set is deliberately tiny (a few kilobytes): it anchors the DIMACS
loading path and the ``--sat-family dimacs`` campaigns; pointing
``load_bundled_instance`` at a competition-scale file is just a matter of
dropping it into the ``instances/`` directory.
"""

from __future__ import annotations

from pathlib import Path

from repro.sat.cnf import CNFFormula

__all__ = ["DEFAULT_INSTANCE", "bundled_instance_names", "bundled_instance_path", "load_bundled_instance"]

#: Directory holding the checked-in ``.cnf`` files (packaged as data).
_INSTANCE_DIR = Path(__file__).resolve().parent / "instances"

#: Instance used when a DIMACS-backed workload does not name one.
DEFAULT_INSTANCE = "uf20-91-s1"


def bundled_instance_names() -> tuple[str, ...]:
    """Names of the checked-in DIMACS instances (sorted, without ``.cnf``)."""
    return tuple(sorted(path.stem for path in _INSTANCE_DIR.glob("*.cnf")))


def bundled_instance_path(name: str) -> Path:
    """Path of a bundled instance, validating the name."""
    path = _INSTANCE_DIR / f"{name}.cnf"
    if not path.is_file():
        known = ", ".join(bundled_instance_names()) or "<none>"
        raise ValueError(f"unknown DIMACS instance {name!r}; bundled instances: {known}")
    return path


def load_bundled_instance(name: str = DEFAULT_INSTANCE) -> CNFFormula:
    """Parse a bundled instance via :meth:`CNFFormula.from_dimacs_file`.

    ``strict=True``: the bundled headers are machine-generated, so a
    count mismatch would mean a corrupted checkout, not a sloppy header.
    """
    return CNFFormula.from_dimacs_file(bundled_instance_path(name), strict=True)
