"""Random k-SAT instance generators.

Three generators are provided:

* :func:`random_ksat` — the classical uniform random k-SAT model with a
  chosen clause count (satisfiability not guaranteed; near the phase
  transition, ratio ≈ 4.27 for 3-SAT, runtimes are heavy-tailed).
* :func:`random_ksat_at_ratio` — the same model parameterised by the
  clause-to-variable ratio instead of the clause count, the natural knob
  for phase-transition studies (campaigns at ratios near 4.27 are
  censoring-heavy: a fraction of instances is unsatisfiable and WalkSAT
  runs on them always exhaust their budget).
* :func:`random_planted_ksat` — draws a hidden assignment first and only
  keeps clauses satisfied by it, guaranteeing satisfiability so that
  WalkSAT is a genuine Las Vegas algorithm (it terminates with probability
  one given enough flips).
"""

from __future__ import annotations

import numpy as np

from repro.sat.cnf import CNFFormula

__all__ = ["clause_count_for_ratio", "random_ksat", "random_ksat_at_ratio", "random_planted_ksat"]


def clause_count_for_ratio(n_variables: int, clause_ratio: float) -> int:
    """Clause count for a target clause-to-variable ratio (≥ 1, rounded)."""
    if clause_ratio <= 0.0:
        raise ValueError(f"clause_ratio must be positive, got {clause_ratio}")
    return max(1, int(round(clause_ratio * n_variables)))


def _random_clause(
    rng: np.random.Generator, n_variables: int, k: int
) -> tuple[int, ...]:
    variables = rng.choice(n_variables, size=k, replace=False) + 1
    signs = rng.integers(0, 2, size=k) * 2 - 1
    return tuple(int(v * s) for v, s in zip(variables, signs))


def random_ksat(
    n_variables: int,
    n_clauses: int,
    k: int = 3,
    *,
    rng: np.random.Generator | None = None,
) -> CNFFormula:
    """Uniform random k-SAT formula with ``n_clauses`` clauses."""
    if n_variables < k:
        raise ValueError(f"need at least k={k} variables, got {n_variables}")
    if n_clauses < 1:
        raise ValueError(f"n_clauses must be >= 1, got {n_clauses}")
    generator = rng if rng is not None else np.random.default_rng()
    clauses = [_random_clause(generator, n_variables, k) for _ in range(n_clauses)]
    return CNFFormula(n_variables, clauses)


def random_ksat_at_ratio(
    n_variables: int,
    clause_ratio: float,
    k: int = 3,
    *,
    rng: np.random.Generator | None = None,
) -> CNFFormula:
    """Uniform random k-SAT at a clause-to-variable ratio (e.g. 4.27 for 3-SAT).

    Satisfiability is *not* guaranteed: near the phase transition roughly
    half the draws are unsatisfiable, so campaigns on these instances are
    the natural producers of right-censored runs (every run on an
    unsatisfiable draw exhausts its flip budget) and must be analysed with
    the censoring-aware fits of :mod:`repro.core.censoring`.
    """
    return random_ksat(
        n_variables, clause_count_for_ratio(n_variables, clause_ratio), k, rng=rng
    )


def random_planted_ksat(
    n_variables: int,
    n_clauses: int,
    k: int = 3,
    *,
    rng: np.random.Generator | None = None,
) -> tuple[CNFFormula, np.ndarray]:
    """Random k-SAT formula guaranteed satisfiable by a planted assignment.

    Returns the formula together with the hidden satisfying assignment
    (useful for tests; solvers obviously do not get to see it).
    """
    if n_variables < k:
        raise ValueError(f"need at least k={k} variables, got {n_variables}")
    if n_clauses < 1:
        raise ValueError(f"n_clauses must be >= 1, got {n_clauses}")
    generator = rng if rng is not None else np.random.default_rng()
    planted = generator.integers(0, 2, size=n_variables).astype(bool)
    clauses: list[tuple[int, ...]] = []
    while len(clauses) < n_clauses:
        clause = _random_clause(generator, n_variables, k)
        satisfied = any(
            (lit > 0) == bool(planted[abs(lit) - 1]) for lit in clause
        )
        if satisfied:
            clauses.append(clause)
    return CNFFormula(n_variables, clauses), planted
