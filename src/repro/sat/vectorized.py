"""Lockstep batched multi-walk kernel: K independent WalkSAT walks, one SIMD loop.

The paper's subject is the speedup of racing K independent Las Vegas walks;
until this module the repo realised that only as K OS processes, each
stepping the scalar incremental kernel of :mod:`repro.sat.incremental`.
Here the K walks of *one* instance advance in lockstep instead: a
``(K, n)`` assignment matrix, a ``(K, m)`` per-clause true-literal-count
matrix and per-walk unsatisfied-clause bookkeeping, all held in flat numpy
arrays, with the per-flip questions (break counts of the picked clauses'
variables, the count/transition updates of the chosen flips) answered for
*all* walks in a handful of vectorised gather/scatter operations per step.

Exactness contract
------------------
The kernel is **bit-identical per seed** to the scalar solver: walk ``i``
of :func:`run_lockstep` consumes its own ``np.random.Generator`` (seeded
with ``seeds[i]``) through *exactly* the call sequence of
``WalkSAT._run`` — the initial ``random_assignment`` draw, one
``integers(n_unsat)`` clause pick per flip, the SKC selection draws of
:func:`repro.solvers.policies.skc_select`, and a ``random_assignment``
redraw per restart.  Only the surrounding arithmetic is batched; the RNG
streams, the unsatisfied-set orderings (same
removals-then-additions-ascending edit rules as
:class:`~repro.sat.incremental.ClauseState`) and therefore the flip
sequences, restart cadences and solutions are the scalar ones, pinned by
``tests/sat/test_vectorized.py``.  Walks retire from the batch as they
solve or exhaust ``max_flips``; the survivors keep stepping.

The dense numeric state is deliberately GPU-portable: assignments, clause
counts and occurrence lists are rectangular int/bool arrays (occurrence
lists padded to the maximum occurrence count, with a trash column
absorbing the padded scatter lanes), and every per-flip *computation* is a
batched array operation, so a CuPy/JAX port of the math is a dtype swap
away.  The only host-side state is per-walk scalar bookkeeping — loop
counters, generators, and the unsatisfied-set cursors, whose deterministic
swap-remove edits are inherently sequential per walk (a GPU port would
replace them with a batched compaction, as scalar exactness ends at that
seam anyway).

The scalar incremental path stays the cross-check oracle; see
:mod:`repro.engine.lockstep` for the execution-engine backend built on this
kernel and ``benchmarks/test_bench_lockstep.py`` for the throughput gate.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.restarts import luby_sequence
from repro.sat.cnf import CNFFormula

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (solvers -> sat)
    from repro.solvers.base import RunResult

__all__ = [
    "LockstepClauseState",
    "LockstepEvaluator",
    "restart_cutoff",
    "run_lockstep",
]

#: Flip policies the lockstep kernel vectorises.  Both run the SKC
#: selection rule (adaptive merely retunes its noise from the unsat count
#: the state already maintains, consuming no extra RNG draws); the Novelty
#: family tracks per-variable flip ages with an RNG-free ranking step that
#: has no batched implementation yet, so it falls back to the scalar path
#: (see :meth:`repro.solvers.walksat.WalkSAT.lockstep_supported`).
LOCKSTEP_POLICIES: tuple[str, ...] = ("walksat", "adaptive")


def restart_cutoff(restart_after: int | None, schedule: str, n_restarts: int) -> int | None:
    """Flip cutoff of the ``n_restarts + 1``-th trajectory segment.

    ``"fixed"`` restarts every ``restart_after`` flips; ``"luby"`` scales
    ``restart_after`` by the Luby universal sequence (1, 1, 2, 1, 1, 2,
    4, ...), i.e. cutoffs are Luby terms *in units of* ``restart_after``.
    Shared by the scalar ``WalkSAT._run`` loop and the lockstep kernel so
    the two cadences cannot drift apart.
    """
    if restart_after is None:
        return None
    if schedule == "fixed":
        return int(restart_after)
    # Luby terms are small exact powers of two; the float round-trip of
    # luby_sequence is lossless.
    return int(restart_after) * int(luby_sequence(n_restarts + 1)[-1])


class LockstepEvaluator:
    """Per-formula rectangular precomputation driving the lockstep kernel.

    The scalar :class:`~repro.sat.incremental.ClauseEvaluator` stores one
    ragged occurrence list per variable; the lockstep kernel needs the same
    information as rectangular arrays so a *batch* of (walk, variable)
    queries is one gather.  Padding conventions:

    * ``occ_clauses[v]`` — the clauses containing variable ``v`` in
      ascending order, padded with ``n_clauses`` (a trash row index — see
      :class:`LockstepClauseState.true_counts`).
    * ``occ_positive`` / ``occ_negative`` — literal multiplicities aligned
      with ``occ_clauses``, padded with zeros.  A padded lane therefore
      contributes ``current == new == 0`` and self-neutralises in every
      break/make/transition predicate — no masks needed in the hot loop.
    * ``clause_variables`` — ``(n_clauses, width)`` clause-position
      variable matrix (duplicates kept, clause order preserved, exactly
      the ``[abs(lit) - 1 for lit in clause]`` list of the scalar loop),
      padded with ``-1``; ``clause_lengths`` holds the true widths.
    """

    def __init__(self, formula: CNFFormula) -> None:
        self.formula = formula
        scalar = formula.clause_evaluator()
        n, m = formula.n_variables, formula.n_clauses
        max_occ = max((arr.size for arr in scalar.clauses), default=1)
        max_occ = max(max_occ, 1)
        self.occ_clauses = np.full((n, max_occ), m, dtype=np.int64)
        self.occ_positive = np.zeros((n, max_occ), dtype=np.int64)
        self.occ_negative = np.zeros((n, max_occ), dtype=np.int64)
        for variable in range(n):
            occurrences = scalar.clauses[variable]
            self.occ_clauses[variable, : occurrences.size] = occurrences
            self.occ_positive[variable, : occurrences.size] = scalar.positive[variable]
            self.occ_negative[variable, : occurrences.size] = scalar.negative[variable]
        width = max(len(clause) for clause in formula.clauses)
        self.clause_variables = np.full((m, width), -1, dtype=np.int64)
        for index, clause in enumerate(formula.clauses):
            self.clause_variables[index, : len(clause)] = [abs(lit) - 1 for lit in clause]
        self.clause_lengths = np.array([len(clause) for clause in formula.clauses], dtype=np.int64)
        # Break eligibility by current polarity: flipping v can only break
        # clause c if v's literal in c is pure and currently true, i.e.
        # (current > 0) & (new == 0) — a function of (variable, polarity)
        # alone, precomputed so the per-step break gather saves three
        # elementwise passes.  Padded lanes are ineligible by construction.
        self.break_when_true = (self.occ_positive > 0) & (self.occ_negative == 0)
        self.break_when_false = (self.occ_negative > 0) & (self.occ_positive == 0)

    def attach(self, assignments: np.ndarray) -> "LockstepClauseState":
        """Build the lockstep state for a ``(K, n)`` assignment matrix."""
        return LockstepClauseState(self, assignments)


class LockstepClauseState:
    """Mutable lockstep state of ``K`` concurrent walks on one formula.

    Attributes
    ----------
    assignment:
        ``(K, n)`` boolean matrix of the walks' current assignments.
    true_counts:
        ``(K, m + 1)`` int64 matrix: true literal slots per clause and
        walk; column ``m`` is a trash slot absorbing the padded lanes of
        the occurrence scatter (written with self-cancelling deltas, never
        read by an unpadded lane).
    unsat_list / unsat_pos:
        The per-walk unsatisfied-clause sets, one entry per walk,
        maintained with the *same* deterministic edit rules as the scalar
        :class:`~repro.sat.incremental.ClauseState` (swap-remove with a
        position table; removals before additions, each in ascending
        clause order) so that for a given RNG rank both paths present the
        same clause.  Unlike the dense numeric state these are plain
        Python int lists: the edits are scalar and sequential per walk
        (one or two per transition), where list indexing beats numpy
        element access several-fold — see the module docstring on the
        GPU-portability seam.
    """

    def __init__(self, evaluator: LockstepEvaluator, assignments: np.ndarray) -> None:
        assignments = np.asarray(assignments, dtype=bool)
        if assignments.ndim != 2:
            raise ValueError(f"assignments must be (K, n), got shape {assignments.shape}")
        self.evaluator = evaluator
        formula = evaluator.formula
        n_walks, m = assignments.shape[0], formula.n_clauses
        self.assignment = assignments.copy()
        self.true_counts = np.zeros((n_walks, m + 1), dtype=np.int64)
        for walk in range(n_walks):
            self.true_counts[walk, :m] = formula.true_literal_counts(self.assignment[walk])
        self.unsat_list: list[list[int]] = [[] for _ in range(n_walks)]
        self.unsat_pos: list[list[int]] = [[] for _ in range(n_walks)]
        for walk in range(n_walks):
            self.rebuild_unsat(walk)

    @property
    def n_walks(self) -> int:
        return self.assignment.shape[0]

    # -- per-walk unsatisfied-set surface (mirrors ClauseState) --------
    def n_unsat(self, walk: int) -> int:
        """Number of unsatisfied clauses of one walk."""
        return len(self.unsat_list[walk])

    def unsat_clause(self, walk: int, rank: int) -> int:
        """The clause stored at ``rank`` in one walk's maintained set."""
        if rank >= len(self.unsat_list[walk]):
            raise IndexError(f"rank {rank} out of range for walk {walk}")
        return self.unsat_list[walk][rank]

    def rebuild_unsat(self, walk: int) -> None:
        """Recompute one walk's set from its counts, in ascending order."""
        m = self.evaluator.formula.n_clauses
        unsat = np.flatnonzero(self.true_counts[walk, :m] == 0).tolist()
        positions = [-1] * m
        for rank, clause in enumerate(unsat):
            positions[clause] = rank
        self.unsat_list[walk] = unsat
        self.unsat_pos[walk] = positions

    def append_clause(self, walk: int, clause: int) -> None:
        """Add a newly-unsatisfied clause to one walk (appends at the end)."""
        row = self.unsat_list[walk]
        self.unsat_pos[walk][clause] = len(row)
        row.append(clause)

    def remove_clause(self, walk: int, clause: int) -> None:
        """Remove a newly-satisfied clause from one walk (swap-remove).

        Same element moves as ``ClauseState.remove_clause``: the last
        entry replaces the removed one (a no-op self-move when the removed
        entry *is* the last), keeping set orderings bit-identical.
        """
        row = self.unsat_list[walk]
        positions = self.unsat_pos[walk]
        position = positions[clause]
        last = row.pop()
        if position != len(row):
            row[position] = last
        positions[last] = position
        positions[clause] = -1

    def apply_transitions(self, walk: int, became_sat, became_unsat) -> None:
        """Commit one walk's flip transitions in the canonical order.

        Removals before additions, each ascending — byte-compatible with
        :meth:`repro.sat.incremental.ClauseState.apply_transitions`.
        """
        for clause in became_sat:
            self.remove_clause(walk, int(clause))
        for clause in became_unsat:
            self.append_clause(walk, int(clause))

    def reinit_walk(self, walk: int, assignment: np.ndarray) -> None:
        """Rebind one walk to a fresh assignment (restart)."""
        formula = self.evaluator.formula
        self.assignment[walk] = np.asarray(assignment, dtype=bool)
        self.true_counts[walk, : formula.n_clauses] = formula.true_literal_counts(
            self.assignment[walk]
        )
        self.rebuild_unsat(walk)

    # -- batched queries ------------------------------------------------
    def _contributions(self, walks: np.ndarray, variables: np.ndarray):
        """Current/after-flip contribution matrices of (walk, variable) pairs."""
        evaluator = self.evaluator
        positive = evaluator.occ_positive[variables]
        negative = evaluator.occ_negative[variables]
        assigned = self.assignment[walks, variables][:, None]
        current = np.where(assigned, positive, negative)
        new = np.where(assigned, negative, positive)
        return current, new

    def break_counts(self, walks: np.ndarray, variables: np.ndarray) -> np.ndarray:
        """Batched WalkSAT break scores of ``B`` (walk, variable) pairs.

        Padded occurrence lanes have ``current == 0`` and never satisfy
        ``current > 0``, so no masking is required; each entry equals the
        scalar :meth:`ClauseEvaluator.break_count` exactly.
        """
        evaluator = self.evaluator
        assigned = self.assignment[walks, variables][:, None]
        eligible = np.where(
            assigned,
            evaluator.break_when_true[variables],
            evaluator.break_when_false[variables],
        )
        current = np.where(
            assigned, evaluator.occ_positive[variables], evaluator.occ_negative[variables]
        )
        counts = self.true_counts[walks[:, None], evaluator.occ_clauses[variables]]
        return np.count_nonzero(eligible & (counts == current), axis=1)

    def make_counts(self, walks: np.ndarray, variables: np.ndarray) -> np.ndarray:
        """Batched WalkSAT make scores of ``B`` (walk, variable) pairs."""
        current, new = self._contributions(walks, variables)
        counts = self.true_counts[walks[:, None], self.evaluator.occ_clauses[variables]]
        return np.count_nonzero((counts == 0) & (new > 0), axis=1)

    def flip(self, walks: np.ndarray, variables: np.ndarray) -> None:
        """Flip one variable per listed walk, batched.

        Count updates are one gather + one scatter over the padded
        occurrence matrix (padded lanes carry a zero delta and land in the
        trash column); the per-walk unsatisfied-set edits then replay the
        scalar transition order, ascending removals before ascending
        additions, so set orderings stay bit-identical to the scalar path.
        """
        occurrences = self.evaluator.occ_clauses[variables]
        current, new = self._contributions(walks, variables)
        counts = self.true_counts[walks[:, None], occurrences]
        updated = counts + (new - current)
        self.true_counts[walks[:, None], occurrences] = updated
        self.assignment[walks, variables] = ~self.assignment[walks, variables]
        became_sat = (counts == 0) & (updated > 0)
        became_unsat = (counts > 0) & (updated == 0)
        # Commit the per-walk set edits in the canonical scalar order:
        # removals before additions, each ascending.  np.nonzero is
        # row-major and occurrence rows are ascending, so iterating the
        # nonzero pairs applies each walk's transitions in exactly that
        # order; walks are independent, so interleaving across rows is
        # irrelevant.  The loop bodies are remove_clause/append_clause
        # inlined — at a few transitions per walk per step the method
        # frames are a measurable share of the kernel.
        walk_list = walks.tolist()
        unsat_list, unsat_pos = self.unsat_list, self.unsat_pos
        rows, cols = np.nonzero(became_sat)
        for row, clause in zip(rows.tolist(), occurrences[rows, cols].tolist()):
            walk = walk_list[row]
            lst = unsat_list[walk]
            positions = unsat_pos[walk]
            position = positions[clause]
            last = lst.pop()
            if position != len(lst):
                lst[position] = last
            positions[last] = position
            positions[clause] = -1
        rows, cols = np.nonzero(became_unsat)
        for row, clause in zip(rows.tolist(), occurrences[rows, cols].tolist()):
            walk = walk_list[row]
            unsat_pos[walk][clause] = len(unsat_list[walk])
            unsat_list[walk].append(clause)


def run_lockstep(
    formula: CNFFormula,
    config,
    seeds: Sequence[int],
) -> "list[RunResult]":
    """Run one WalkSAT walk per seed in lockstep; bit-identical per seed.

    ``config`` is a :class:`~repro.solvers.walksat.WalkSATConfig` whose
    policy must be in :data:`LOCKSTEP_POLICIES` (the caller,
    :meth:`WalkSAT.run_lockstep`, falls back to the scalar loop
    otherwise).  Returns one :class:`~repro.solvers.base.RunResult` per
    seed, in seed order, with ``iterations``/``solved``/``restarts``/
    ``solution``/``seed`` equal to ``WalkSAT(formula, config).run(seed)``
    for every seed; ``runtime_seconds`` is the wall clock from kernel
    start to the walk's retirement (walks leave the batch as they solve or
    exhaust the flip budget, like parallel walks leaving a race).
    """
    from repro.solvers.base import RunResult

    if config.policy not in LOCKSTEP_POLICIES:
        raise ValueError(
            f"lockstep kernel supports policies {LOCKSTEP_POLICIES}, got {config.policy!r}"
        )
    n_walks = len(seeds)
    if n_walks == 0:
        return []
    evaluator = formula.lockstep_evaluator()
    rngs = [np.random.default_rng(int(seed)) for seed in seeds]
    start = time.perf_counter()
    state = evaluator.attach(
        np.stack([formula.random_assignment(rng) for rng in rngs])
    )

    max_flips = config.max_flips
    restart_after = config.restart_after
    schedule = config.restart_schedule
    adaptive = config.policy == "adaptive"
    noise = [float(config.noise)] * n_walks
    # Adaptive-noise bookkeeping (Hoos 2002), replicated per walk exactly
    # as AdaptiveNoisePolicy tracks it: stagnation window in flips, best
    # unsat count of the current trajectory, flips since the best.
    window = max(1, int(round(config.adaptive_theta * formula.n_clauses)))
    phi = config.adaptive_phi
    best = [state.n_unsat(walk) for walk in range(n_walks)]
    since_best = [0] * n_walks

    flips = [0] * n_walks
    restarts = [0] * n_walks
    flips_since_restart = [0] * n_walks
    cutoff = [restart_cutoff(restart_after, schedule, 0)] * n_walks
    results: list[RunResult | None] = [None] * n_walks

    def retire(walk: int, solved: bool) -> None:
        results[walk] = RunResult(
            solved=solved,
            iterations=flips[walk],
            runtime_seconds=time.perf_counter() - start,
            solution=state.assignment[walk].copy() if solved else None,
            restarts=restarts[walk],
            seed=int(seeds[walk]),
        )

    active = []
    for walk in range(n_walks):
        if state.n_unsat(walk) == 0:
            retire(walk, True)  # the initial random assignment solved it
        else:
            active.append(walk)

    clause_variables = evaluator.clause_variables
    clause_lengths = evaluator.clause_lengths
    width = clause_variables.shape[1]
    uniform_width = bool((clause_lengths == width).all())
    position_index = np.arange(width)
    unsat_list = state.unsat_list

    while active:
        # 1. Restarts due this step (checked before picking, like the
        #    scalar loop top); a restart consumes no flip and the walk
        #    keeps stepping in the same iteration unless the fresh
        #    assignment already solves the formula.
        if restart_after is not None:
            survivors = []
            for walk in active:
                if flips_since_restart[walk] >= cutoff[walk]:
                    state.reinit_walk(walk, formula.random_assignment(rngs[walk]))
                    restarts[walk] += 1
                    flips_since_restart[walk] = 0
                    cutoff[walk] = restart_cutoff(restart_after, schedule, restarts[walk])
                    if adaptive:
                        best[walk] = state.n_unsat(walk)
                        since_best[walk] = 0
                    if state.n_unsat(walk) == 0:
                        retire(walk, True)
                        continue
                survivors.append(walk)
            active = survivors
            if not active:
                break

        # 2. Per-walk clause picks: one integers(n_unsat) draw each, the
        #    scalar stream exactly.
        picked = [
            (row := unsat_list[walk])[rngs[walk].integers(len(row))]
            for walk in active
        ]

        # 3. Batched break counts of every clause position of every walk.
        active_arr = np.asarray(active, dtype=np.int64)
        picked_arr = np.asarray(picked, dtype=np.int64)
        position_vars = clause_variables[picked_arr]
        walks_rep = np.repeat(active_arr, width)
        # Padded positions query variable 0; their garbage break counts
        # are sliced away before selection.
        vars_flat = np.where(position_vars >= 0, position_vars, 0).ravel()
        breaks = state.break_counts(walks_rep, vars_flat).reshape(len(active), width)

        # 4. SKC selection, split batched/sequential: the candidate
        #    tables (zero-break positions, then minimum-break positions,
        #    both ascending) come from vectorised numpy over the whole
        #    break matrix; the per-walk residue consumes RNG draws in
        #    exactly the sequence of
        #    :func:`repro.solvers.policies.skc_select` — one ``integers``
        #    over the candidate table, preceded by a ``random`` noise draw
        #    when no free position exists (equivalence pinned by
        #    ``tests/sat/test_vectorized.py``).
        if uniform_width:
            lengths = None
            zero_mask = breaks == 0
            min_values = breaks.min(axis=1)
            min_mask = breaks == min_values[:, None]
        else:
            lengths = clause_lengths[picked_arr].tolist()
            valid = position_index < clause_lengths[picked_arr][:, None]
            zero_mask = (breaks == 0) & valid
            min_values = np.where(valid, breaks, np.iinfo(np.int64).max).min(axis=1)
            min_mask = (breaks == min_values[:, None]) & valid
        n_zero = zero_mask.sum(axis=1).tolist()
        n_min = min_mask.sum(axis=1).tolist()
        # Stable argsort of ~mask lists each row's True positions first,
        # ascending — the candidate tables of both selection branches.
        zero_table = np.argsort(~zero_mask, axis=1, kind="stable").tolist()
        min_table = np.argsort(~min_mask, axis=1, kind="stable").tolist()
        variable_rows = position_vars.tolist()
        chosen = []
        for row, walk in enumerate(active):
            rng = rngs[walk]
            count = n_zero[row]
            if count:
                position = zero_table[row][int(rng.integers(count))]
            elif rng.random() < noise[walk]:
                position = int(rng.integers(width if lengths is None else lengths[row]))
            else:
                position = min_table[row][int(rng.integers(n_min[row]))]
            chosen.append(variable_rows[row][position])

        # 5. One batched flip for the whole step.
        state.flip(active_arr, np.asarray(chosen, dtype=np.int64))

        # 6. Post-flip bookkeeping and retirement.
        survivors = []
        for walk in active:
            flips[walk] += 1
            flips_since_restart[walk] += 1
            n_unsat = len(unsat_list[walk])
            if adaptive:
                if n_unsat < best[walk]:
                    best[walk] = n_unsat
                    since_best[walk] = 0
                    noise[walk] -= noise[walk] * phi / 2.0
                else:
                    since_best[walk] += 1
                    if since_best[walk] >= window:
                        noise[walk] += (1.0 - noise[walk]) * phi
                        since_best[walk] = 0
            if n_unsat == 0:
                retire(walk, True)
            elif flips[walk] >= max_flips:
                retire(walk, False)
            else:
                survivors.append(walk)
        active = survivors

    assert all(result is not None for result in results)
    return results  # type: ignore[return-value]
