"""Cluster sizing: how many cores are worth buying for a local-search workload?

The motivating question of the paper: before renting a 256-core cluster,
predict from cheap sequential runs whether the multi-walk parallelisation
will actually pay off.  This example contrasts two workloads:

* ALL-INTERVAL — runtimes follow a *shifted* exponential, so the speed-up
  saturates at a finite limit and most of the cluster would sit idle;
* COSTAS — runtimes are essentially exponential with a negligible shift, so
  the speed-up is close to linear and more cores keep paying off.

For each workload the example prints the predicted speed-up curve, the
asymptotic limit, the core count reaching 80% of that limit, and the core
count at which parallel efficiency drops below 50%.

Run with:  python examples/cluster_sizing.py
"""

from __future__ import annotations

import numpy as np

from repro.core.prediction import predict_speedup_curve
from repro.core.speedup import SpeedupModel
from repro.csp.problems import AllIntervalProblem, CostasArrayProblem
from repro.engine import pick_default_backend
from repro.multiwalk.runner import run_sequential_batch
from repro.solvers import AdaptiveSearch, AdaptiveSearchConfig

#: Collect both campaigns on the process backend when cores are available;
#: the engine guarantees the same iteration counts either way.
BACKEND = pick_default_backend()


def analyse(name: str, iterations: np.ndarray, family: str, shift_rule: str) -> None:
    cores = [2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
    prediction = predict_speedup_curve(iterations, cores, family=family, shift_rule=shift_rule)
    model = SpeedupModel(prediction.distribution)

    print(f"\n=== {name} ===")
    print(f"fitted family: {prediction.family}   parameters: "
          + ", ".join(f"{k}={v:.4g}" for k, v in prediction.distribution.params().items()))
    print(f"asymptotic speed-up limit: {prediction.limit:.1f}")

    if np.isfinite(prediction.limit):
        target = 0.8 * prediction.limit
        needed = model.cores_for_target_speedup(target)
        print(f"cores needed for 80% of the limit ({target:.1f}x): {needed}")
    else:
        print("speed-up grows without bound (linear scaling regime)")

    saturation = model.saturation_cores(efficiency_threshold=0.5, max_cores=1 << 16)
    if saturation is None:
        print("parallel efficiency stays above 50% for every core count tested")
    else:
        print(f"parallel efficiency falls below 50% beyond ~{saturation} cores")

    print(f"{'cores':>6s} {'speed-up':>10s} {'efficiency':>11s}")
    for n, s in prediction.curve:
        print(f"{n:>6d} {s:>10.1f} {s / n:>10.0%}")


def main() -> None:
    budget = 200_000

    ai_solver = AdaptiveSearch(AllIntervalProblem(12), AdaptiveSearchConfig(max_iterations=budget))
    ai_obs = run_sequential_batch(ai_solver, n_runs=150, base_seed=1, backend=BACKEND)
    analyse("ALL-INTERVAL 12 (shifted exponential regime)",
            ai_obs.values("iterations"), "shifted_exponential", "min")

    costas_solver = AdaptiveSearch(CostasArrayProblem(10), AdaptiveSearchConfig(max_iterations=budget))
    costas_obs = run_sequential_batch(costas_solver, n_runs=150, base_seed=2, backend=BACKEND)
    analyse("COSTAS 10 (near-linear regime)",
            costas_obs.values("iterations"), "shifted_exponential", "zero_if_negligible")


if __name__ == "__main__":
    main()
