"""Reproduce every table and figure of the paper in one go.

Equivalent to ``repro-lasvegas run all`` but written against the library API
so it can serve as a template for custom campaigns.  The ``--profile full``
flag switches to larger instances and more sequential runs (minutes to tens
of minutes depending on the machine).

Run with:  python examples/reproduce_paper.py [--profile quick|full|tiny]
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import ExperimentConfig
from repro.experiments.registry import (
    EXPERIMENTS,
    OBSERVATION_KINDS,
    collect_observations_for,
    run_experiment,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=("tiny", "quick", "full"), default="quick")
    parser.add_argument("--cache-dir", default=None, help="reuse solver campaigns across runs")
    args = parser.parse_args()

    config = {
        "tiny": ExperimentConfig.tiny,
        "quick": ExperimentConfig.quick,
        "full": ExperimentConfig.full,
    }[args.profile]()

    print(f"profile: {args.profile}  "
          f"(MS {config.magic_square_n}x{config.magic_square_n}, AI {config.all_interval_n}, "
          f"Costas {config.costas_n}, {config.n_sequential_runs} sequential runs)")

    start = time.perf_counter()
    campaigns = {
        kind: collect_observations_for(kind, config, cache_dir=args.cache_dir)
        for kind in OBSERVATION_KINDS
    }
    print(f"sequential campaigns collected in {time.perf_counter() - start:.1f}s\n")

    for name, entry in EXPERIMENTS.items():
        if entry.observations is not None:
            result = run_experiment(name, config, observations=campaigns[entry.observations])
        else:
            result = run_experiment(name, config)
        print(result.format())
        print()


if __name__ == "__main__":
    main()
