"""Distributed-campaign smoke check: coordinator + external workers, vs serial.

This is the script the ``distributed-smoke`` CI job runs to prove the
engine's determinism invariant across process (and host) boundaries: a
campaign collected with ``--backend distributed`` on however many workers
happen to connect must be **bit-identical** — label, iteration counts,
solved flags and seeds — to the same campaign collected serially.  (Wall
clock is the one field that legitimately differs: it measures the machine,
not the algorithm.)

The script acts as the coordinator for two small campaigns, N-Queens
(Adaptive Search) and planted 3-SAT (WalkSAT), then re-collects both
serially and byte-compares the deterministic fields.  Workers are separate
processes; start them yourself (as the CI job does)::

    python -m repro.cli worker --connect 127.0.0.1:7821 --connect-timeout 60 &
    python -m repro.cli worker --connect 127.0.0.1:7821 --connect-timeout 60 &
    python examples/distributed_smoke.py --coordinator 127.0.0.1:7821

or let the script spawn local workers for a self-contained run::

    python examples/distributed_smoke.py --coordinator 127.0.0.1:0 --spawn-workers 2

Exits non-zero on any mismatch.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys

import numpy as np

from repro.engine import DistributedBackend, collect_batch
from repro.csp.problems import NQueensProblem
from repro.sat import random_planted_ksat
from repro.solvers import AdaptiveSearch, AdaptiveSearchConfig, WalkSAT, WalkSATConfig


def _campaigns(base_seed: int):
    """The two smoke workloads: one CSP benchmark, one SAT workload."""
    rng = np.random.default_rng(base_seed)
    formula, _planted = random_planted_ksat(40, 168, 3, rng=rng)
    return [
        (
            "nqueens-8",
            AdaptiveSearch(NQueensProblem(8), AdaptiveSearchConfig(max_iterations=50_000)),
        ),
        ("planted-3sat-40", WalkSAT(formula, WalkSATConfig(max_flips=200_000, noise=0.5))),
    ]


def deterministic_bytes(batch) -> bytes:
    """Canonical bytes of a batch's backend-invariant fields."""
    payload = batch.to_dict()
    payload.pop("runtimes")  # wall clock measures the machine, not the run
    return json.dumps(payload, sort_keys=True).encode()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--coordinator",
        default="127.0.0.1:7821",
        metavar="HOST:PORT",
        help="address to serve work units on (port 0 picks a free port)",
    )
    parser.add_argument("--runs", type=int, default=24, help="runs per campaign (default: 24)")
    parser.add_argument("--seed", type=int, default=20130813, help="campaign base seed")
    parser.add_argument(
        "--spawn-workers",
        type=int,
        default=0,
        metavar="N",
        help="spawn N local worker subprocesses instead of relying on external ones",
    )
    parser.add_argument(
        "--unit-size", type=int, default=4, help="runs per work unit (default: 4)"
    )
    parser.add_argument(
        "--batch-timeout",
        type=float,
        default=120.0,
        help="fail if no unit completes within this many seconds (default: 120)",
    )
    args = parser.parse_args()

    backend = DistributedBackend(
        coordinator=args.coordinator,
        unit_size=args.unit_size,
        batch_timeout=args.batch_timeout,
    )
    address = backend.start()
    print(f"coordinator listening on {address}")

    spawned: list[subprocess.Popen] = []
    for _ in range(args.spawn_workers):
        spawned.append(
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "worker",
                    "--connect",
                    address,
                    "--connect-timeout",
                    "60",
                ]
            )
        )

    failures = 0
    try:
        for offset, (name, solver) in enumerate(_campaigns(args.seed)):
            seed = args.seed + offset
            distributed = collect_batch(
                solver, args.runs, base_seed=seed, label=name, backend=backend
            )
            serial = collect_batch(solver, args.runs, base_seed=seed, label=name)
            identical = deterministic_bytes(distributed) == deterministic_bytes(serial)
            status = "bit-identical" if identical else "MISMATCH"
            print(
                f"{name:<18s} runs={distributed.n_runs:<4d} "
                f"solved={distributed.n_solved:<4d} "
                f"mean-iterations={distributed.iterations.mean():.1f}  [{status}]"
            )
            if not identical:
                failures += 1
    finally:
        backend.shutdown()
        for proc in spawned:
            proc.wait(timeout=60)

    if failures:
        print(f"FAILED: {failures} campaign(s) diverged between backends", file=sys.stderr)
        return 1
    print("distributed == serial for every campaign (deterministic fields, byte-compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
