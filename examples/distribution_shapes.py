"""Distribution shapes and what they mean for parallel scaling.

A pure-model example (no solver runs): for four runtime-distribution shapes
with the *same mean*, show how differently the multi-walk speed-up behaves —
the central insight of the paper (Sections 3.3–3.4 and the Costas
discussion in Section 7):

* non-shifted exponential  -> perfectly linear speed-up;
* shifted exponential      -> finite limit ``1 + 1/(x0 * lambda)``;
* lognormal                -> fast initial growth, then saturation;
* Pareto (heavy tail)      -> super-linear speed-up at small core counts.

Also demonstrates defining a custom distribution family and registering it
with the library.

Run with:  python examples/distribution_shapes.py
"""

from __future__ import annotations

import math
from typing import ClassVar, Mapping

import numpy as np

from repro.core.distributions import (
    LogNormalRuntime,
    ParetoRuntime,
    ShiftedExponential,
)
from repro.core.distributions.base import RuntimeDistribution
from repro.core.distributions.registry import register_distribution
from repro.core.speedup import SpeedupModel

MEAN = 1000.0
CORES = [1, 2, 4, 8, 16, 32, 64, 128, 256]


@register_distribution
class HalfLogisticRuntime(RuntimeDistribution):
    """Half-logistic distribution — a user-defined family.

    Only ``pdf``, ``cdf``, ``mean``, ``sample`` and ``params`` are needed;
    the minimum transform, speed-up curves and quantiles come for free from
    the base class.
    """

    name: ClassVar[str] = "half_logistic"

    def __init__(self, scale: float) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = float(scale)

    def params(self) -> Mapping[str, float]:
        return {"scale": self.scale}

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        z = np.clip(t / self.scale, 0.0, None)
        out = np.where(t < 0, 0.0, 2.0 * np.exp(-z) / (self.scale * (1.0 + np.exp(-z)) ** 2))
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=float)
        z = np.clip(t / self.scale, 0.0, None)
        out = np.where(t < 0, 0.0, (1.0 - np.exp(-z)) / (1.0 + np.exp(-z)))
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return self.scale * math.log(4.0)

    def sample(self, rng, size=None):
        return np.abs(rng.logistic(loc=0.0, scale=self.scale, size=size))


def main() -> None:
    distributions = {
        "exponential (x0=0)": ShiftedExponential(x0=0.0, lam=1.0 / MEAN),
        "shifted exponential (x0=mean/2)": ShiftedExponential(x0=MEAN / 2, lam=2.0 / MEAN),
        "lognormal (sigma=1.2)": LogNormalRuntime(
            mu=math.log(MEAN) - 0.5 * 1.2**2, sigma=1.2, x0=0.0
        ),
        "Pareto (alpha=1.5)": ParetoRuntime(x_m=MEAN / 3.0, alpha=1.5),
        "half-logistic (custom family)": HalfLogisticRuntime(scale=MEAN / math.log(4.0)),
    }

    print(f"all distributions share the same mean runtime: {MEAN:.0f}\n")
    header = f"{'cores':>6s} " + " ".join(f"{name[:18]:>20s}" for name in distributions)
    print(header)
    models = {name: SpeedupModel(dist) for name, dist in distributions.items()}
    for n in CORES:
        row = f"{n:>6d} " + " ".join(f"{models[name].speedup(n):>20.1f}" for name in distributions)
        print(row)

    print("\nasymptotic limits:")
    for name, model in models.items():
        limit = model.limit()
        rendered = "unbounded (linear)" if math.isinf(limit) else f"{limit:.1f}"
        print(f"  {name:<32s} {rendered}")


if __name__ == "__main__":
    main()
