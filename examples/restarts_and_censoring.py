"""Beyond the first finisher: restarts, censored runs and incomplete algorithms.

Three practical extensions built on the same runtime-distribution machinery
as the paper's model:

1. **Restart or parallelise?**  For a heavy-tailed runtime profile, compare
   the optimal fixed-cutoff restart strategy, the plain multi-walk and
   their combination.
2. **Censored campaigns.**  When sequential runs are cut by an iteration
   budget, the naive "drop unfinished runs" estimate is optimistic; the
   censoring-aware exponential MLE and the Kaplan–Meier curve fix that.
3. **Incomplete algorithms.**  For a solver that only succeeds with
   probability p per budgeted run, how many parallel walks are needed for a
   99% success probability, and what is the effective speed-up?

Run with:  python examples/restarts_and_censoring.py
"""

from __future__ import annotations

import numpy as np

from repro.core.censoring import (
    IncompleteRunModel,
    censored_exponential_fit,
    censored_mean,
    kaplan_meier,
)
from repro.core.distributions import LogNormalRuntime, ShiftedExponential
from repro.core.restarts import luby_sequence, restart_vs_multiwalk


def restart_section() -> None:
    print("=== 1. restart vs multi-walk ===")
    heavy = LogNormalRuntime(mu=5.0, sigma=2.2, x0=0.0)
    light = ShiftedExponential(x0=0.0, lam=1e-3)
    for name, dist in (("heavy-tailed lognormal", heavy), ("memoryless exponential", light)):
        analysis = restart_vs_multiwalk(dist, n_cores=16)
        cutoff, value = analysis.optimal_cutoff, analysis.restart_runtime
        print(f"\n{name} (mean {dist.mean():,.0f}):")
        print(f"  optimal restart cutoff : {cutoff:,.1f}  -> expected runtime {value:,.1f}")
        print(f"  restart gain           : {analysis.restart_gain:6.2f}x")
        print(f"  16-core multi-walk gain: {analysis.multiwalk_gain:6.2f}x")
        print(f"  combined gain          : {analysis.combined_gain:6.2f}x")
        print(f"  best strategy          : {analysis.best_strategy()}")
    print(f"\nLuby universal restart sequence (first 15 terms): "
          f"{luby_sequence(15).astype(int).tolist()}")


def censoring_section() -> None:
    print("\n=== 2. censored campaigns ===")
    rng = np.random.default_rng(0)
    true = ShiftedExponential(x0=0.0, lam=1e-4)
    full = true.sample(rng, 1000)
    budget = 15_000.0
    censored_flags = full > budget
    observed = np.where(censored_flags, budget, full)
    print(f"true mean runtime                 : {true.mean():,.0f}")
    print(f"naive mean over finished runs only: {observed[~censored_flags].mean():,.0f}   "
          f"({censored_flags.mean():.0%} of runs were censored)")
    print(f"censoring-aware MLE mean          : {censored_mean(observed, censored_flags):,.0f}")
    fit = censored_exponential_fit(observed, censored_flags)
    print(f"censoring-aware predicted G_64    : {fit.speedup(64):,.1f}  "
          f"(true model gives {true.speedup(64):,.1f})")
    km = kaplan_meier(observed, censored_flags)
    print(f"Kaplan-Meier survival at the budget: {km.survival_at(budget):.2f}")


def incomplete_section() -> None:
    print("\n=== 3. incomplete Las Vegas algorithms ===")
    model = IncompleteRunModel(success_probability=0.08, mean_success_cost=40_000.0,
                               budget=100_000.0)
    print("per-run success probability: 8%, budget 100k iterations")
    for n in (1, 8, 32, 128):
        print(
            f"  {n:>4d} walks: success probability {model.multiwalk_success_probability(n):6.1%}, "
            f"effective speed-up {model.effective_speedup(n):6.2f}x"
        )
    needed = model.cores_for_success_probability(0.99)
    print(f"walks needed for a 99% success probability per round: {needed}")


def main() -> None:
    restart_section()
    censoring_section()
    incomplete_section()


if __name__ == "__main__":
    main()
