"""Predict the speed-up of a large instance from small-instance runs only.

This implements the paper's proposed future-work method (Section 8): for a
given problem/algorithm pair the runtime-distribution *shape* is stable
across instance sizes, so one can

1. run the solver on several small, cheap instances,
2. check the same distribution family fits all of them,
3. learn how the distribution parameters scale with the instance size,
4. extrapolate the parameters to a larger target size and predict its
   multi-walk speed-up without ever solving it sequentially at scale.

The example does this for ALL-INTERVAL and then *validates* the prediction
by actually solving the target instance and simulating the multi-walk.

Run with:  python examples/scaling_study.py
"""

from __future__ import annotations

from repro.csp.problems import AllIntervalProblem
from repro.scaling import InstanceScalingStudy


def main() -> None:
    small_sizes = [8, 9, 10, 11]
    target_size = 14

    study = InstanceScalingStudy(
        problem_factory=AllIntervalProblem,
        family="shifted_exponential",   # the family the paper fits to ALL-INTERVAL
        shift_rule="min",
        n_runs=60,
        max_iterations=300_000,
        base_seed=7,
    )

    print(f"running the scaling study on ALL-INTERVAL sizes {small_sizes} ...")
    study.run(small_sizes)

    print(f"family stable across sizes: {study.family_is_stable()}")
    print(f"KS-accepted at every size:  {study.accepted_everywhere()}")
    print("\nfitted parameters per size:")
    for size, params in study.parameter_table().items():
        rendered = ", ".join(f"{k}={v:.4g}" for k, v in params.items())
        print(f"  n={size:<3d} {rendered}")

    shift_law, excess_law = study.scaling_laws()
    print(
        f"\nshift law:       x0(n) ~ {shift_law.coefficient:.3g} * n^{shift_law.exponent:.2f}"
        f"   (R^2 = {shift_law.r_squared:.3f})"
    )
    print(
        f"mean-excess law: (E[Y]-x0)(n) ~ {excess_law.coefficient:.3g} * n^{excess_law.exponent:.2f}"
        f"   (R^2 = {excess_law.r_squared:.3f})"
    )

    cores = [16, 32, 64, 128, 256]
    prediction = study.extrapolate(target_size, cores)
    print(f"\nextrapolated prediction for ALL-INTERVAL {target_size}:")
    print(prediction.summary())

    print(f"\nvalidating by actually solving ALL-INTERVAL {target_size} (this is the "
          "expensive step the method lets you skip) ...")
    comparison = study.validate(target_size, cores=[16, 64, 256], n_runs=40)
    print(f"{'cores':>6s} {'extrapolated':>13s} {'direct fit':>11s} {'simulated':>10s}")
    for n in (16, 64, 256):
        print(
            f"{n:>6d} {comparison['extrapolated'][n]:>13.1f} "
            f"{comparison['direct_fit'][n]:>11.1f} {comparison['simulated'][n]:>10.1f}"
        )


if __name__ == "__main__":
    main()
