"""SAT portfolio prediction: applying the model beyond the paper's benchmarks.

The paper's conclusion proposes extending the prediction model to SAT
solvers, where independent multi-walk parallelism is known as an *algorithm
portfolio*.  This example:

1. generates a satisfiable random 3-SAT instance near the hard region;
2. collects sequential WalkSAT runs (flips = iterations);
3. predicts the portfolio speed-up with both the parametric fit and the
   nonparametric empirical predictor;
4. validates the prediction against a simulated portfolio and against a real
   (process-based) portfolio for a small number of cores.

Run with:  python examples/sat_portfolio.py
"""

from __future__ import annotations

import numpy as np

from repro.core.prediction import predict_speedup_curve, predict_speedup_empirical
from repro.multiwalk.parallel import emulate_multiwalk
from repro.multiwalk.runner import run_sequential_batch
from repro.multiwalk.simulate import simulate_multiwalk_speedups
from repro.sat import random_planted_ksat
from repro.solvers import WalkSAT, WalkSATConfig


def main() -> None:
    rng = np.random.default_rng(7)
    n_variables = 60
    ratio = 4.0  # clause/variable ratio; 4.27 is the 3-SAT phase transition
    formula, _planted = random_planted_ksat(n_variables, int(ratio * n_variables), rng=rng)
    solver = WalkSAT(formula, WalkSATConfig(max_flips=200_000, noise=0.5))
    print(f"instance: {formula!r} (clause/variable ratio {ratio})")

    # Collected through the execution engine (serial backend keeps the
    # example dependency-free on single-core machines; pass
    # backend="process" for a multi-core speedup with identical counts).
    observations = run_sequential_batch(solver, n_runs=120, base_seed=11)
    flips = observations.values("iterations")
    print(
        f"sequential WalkSAT: success {observations.success_rate():.0%}, "
        f"flips min/mean/max = {flips.min():.0f}/{flips.mean():.0f}/{flips.max():.0f}"
    )

    cores = [4, 8, 16, 32, 64, 128]
    parametric = predict_speedup_curve(flips, cores)
    empirical = predict_speedup_empirical(flips, cores)
    measured = simulate_multiwalk_speedups(observations, cores, n_parallel_runs=60)

    print("\nportfolio speed-up (flips):")
    print(f"{'cores':>6s} {'measured':>10s} {'parametric':>11s} {'empirical':>10s}")
    for n in cores:
        print(
            f"{n:>6d} {measured.speedup(n):>10.1f} "
            f"{parametric.speedup(n):>11.1f} {empirical.speedup(n):>10.1f}"
        )
    print(f"\nparametric fit: {parametric.fit.summary()}")

    # A genuinely executed (not simulated) small portfolio for a sanity check.
    portfolio_size = 8
    outcome = emulate_multiwalk(solver, portfolio_size, base_seed=99)
    print(
        f"\nreal {portfolio_size}-walk portfolio: winner solved={outcome.solved}, "
        f"min flips={outcome.min_iterations} "
        f"(sequential mean was {flips.mean():.0f})"
    )


if __name__ == "__main__":
    main()
