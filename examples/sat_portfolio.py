"""SAT portfolio prediction: applying the model beyond the paper's benchmarks.

The paper's conclusion proposes extending the prediction model to SAT
solvers, where independent multi-walk parallelism is known as an *algorithm
portfolio*.  This example:

1. generates a satisfiable planted 3-SAT instance near the hard region;
2. collects sequential WalkSAT runs through the execution engine
   (flips = iterations; the incremental clause state makes each run
   ~10-30x faster than full re-evaluation);
3. predicts the portfolio speed-up with both the parametric fit and the
   nonparametric empirical predictor;
4. validates the prediction against a simulated portfolio and against a
   real engine race (`repro.engine.run_race`) for a small number of cores;
5. with ``--backend lockstep``, services the whole campaign as SIMD kernel
   calls (`repro.sat.vectorized`) and compares wall clock against the
   process backend on identical observations — one core batching walks
   versus several cores running them scalar.

The same workload is registered in the experiment registry: try
``repro-lasvegas run sat_flips sat_portfolio`` or
``repro-lasvegas campaign`` for the cached CLI equivalent.

Run with:  python examples/sat_portfolio.py [--backend serial|thread|process|lockstep]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core.prediction import predict_speedup_curve, predict_speedup_empirical
from repro.engine import collect_batch, run_race
from repro.multiwalk.simulate import simulate_multiwalk_speedups
from repro.sat import random_planted_ksat
from repro.solvers import WalkSAT, WalkSATConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        choices=("serial", "thread", "process", "lockstep"),
        default="serial",
        help="engine backend for the sequential campaign and the race "
        "(flip counts are bit-identical on every backend; lockstep batches "
        "all walks into SIMD kernel calls in one process)",
    )
    parser.add_argument(
        "--cache-dir", default=None, help="observation-cache directory (repeat runs are free)"
    )
    args = parser.parse_args()

    rng = np.random.default_rng(7)
    n_variables = 60
    ratio = 4.2  # clause/variable ratio; 4.27 is the 3-SAT phase transition
    formula, _planted = random_planted_ksat(n_variables, int(ratio * n_variables), rng=rng)
    solver = WalkSAT(formula, WalkSATConfig(max_flips=200_000, noise=0.5))
    print(f"instance: {formula!r} (clause/variable ratio {ratio})")

    # Collected through the unified execution engine: any backend, same
    # counts, optional content-addressed disk cache.
    observations = collect_batch(
        solver,
        n_runs=120,
        base_seed=11,
        backend=args.backend,
        cache=args.cache_dir,
    )
    flips = observations.values("iterations")
    print(
        f"sequential WalkSAT ({args.backend} backend): "
        f"success {observations.success_rate():.0%}, "
        f"flips min/mean/max = {flips.min():.0f}/{flips.mean():.0f}/{flips.max():.0f}"
    )

    cores = [4, 8, 16, 32, 64, 128]
    parametric = predict_speedup_curve(flips, cores)
    empirical = predict_speedup_empirical(flips, cores)
    measured = simulate_multiwalk_speedups(observations, cores, n_parallel_runs=60)

    print("\nportfolio speed-up (flips):")
    print(f"{'cores':>6s} {'measured':>10s} {'parametric':>11s} {'empirical':>10s}")
    for n in cores:
        print(
            f"{n:>6d} {measured.speedup(n):>10.1f} "
            f"{parametric.speedup(n):>11.1f} {empirical.speedup(n):>10.1f}"
        )
    print(f"\nparametric fit: {parametric.fit.summary()}")

    # A genuinely executed (not simulated) portfolio: the engine's
    # first-finisher-wins race over independent walks.
    portfolio_size = 8
    outcome = run_race(solver, portfolio_size, base_seed=99, backend=args.backend)
    print(
        f"\nreal {portfolio_size}-walk portfolio ({args.backend}): "
        f"winner solved={outcome.solved}, "
        f"min flips={outcome.winner_result.iterations} "
        f"(sequential mean was {flips.mean():.0f})"
    )

    if args.backend == "lockstep":
        # SIMD batching in one process vs task parallelism across
        # processes: same seeds, bit-identical observations, very
        # different machines.  (Uncached on purpose — this measures the
        # collection itself.)
        start = time.perf_counter()
        lockstep_batch = collect_batch(solver, n_runs=120, base_seed=11, backend="lockstep")
        lockstep_seconds = time.perf_counter() - start
        start = time.perf_counter()
        process_batch = collect_batch(solver, n_runs=120, base_seed=11, backend="process")
        process_seconds = time.perf_counter() - start
        assert (
            lockstep_batch.iterations.tolist() == process_batch.iterations.tolist()
        ), "backends must agree bit for bit"
        ratio = process_seconds / lockstep_seconds if lockstep_seconds > 0 else float("inf")
        print(
            f"\nlockstep vs process wall clock (120 runs, identical flips): "
            f"lockstep {lockstep_seconds:.2f}s, process {process_seconds:.2f}s "
            f"-> {ratio:.2f}x"
        )


if __name__ == "__main__":
    main()
