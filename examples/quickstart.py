"""Quickstart: predict the parallel speed-up of a Las Vegas algorithm.

This walks the paper's pipeline end to end on a small instance:

1. build a combinatorial problem and a Las Vegas solver (Adaptive Search on
   a Costas array);
2. collect a batch of independent sequential runs;
3. fit a runtime distribution and check it with the Kolmogorov–Smirnov test;
4. predict the multi-walk speed-up for 16…256 cores;
5. compare against a simulated multi-walk execution.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import predict_speedup_curve, simulate_multiwalk_speedups
from repro.csp.problems import CostasArrayProblem
from repro.engine import collect_batch, pick_default_backend
from repro.solvers import AdaptiveSearch, AdaptiveSearchConfig


def main() -> None:
    # 1. A Costas array instance and the paper's solver.
    problem = CostasArrayProblem(10)
    solver = AdaptiveSearch(problem, AdaptiveSearchConfig(max_iterations=200_000))

    # 2. Independent runs (the paper collects ~650; 150 is enough here),
    #    collected through the execution engine.  The process backend uses
    #    every core; iteration counts are identical on any backend.
    backend = pick_default_backend()
    print(f"collecting runs of {solver.describe()} on the {backend} backend ...")
    observations = collect_batch(solver, 150, base_seed=42, backend=backend)
    iterations = observations.values("iterations")
    print(
        f"  {observations.n_runs} runs, success rate {observations.success_rate():.0%}, "
        f"iterations min/mean/max = {iterations.min():.0f}/{iterations.mean():.0f}/{iterations.max():.0f}"
    )

    # 3 + 4. Fit a distribution and predict the multi-walk speed-up.
    cores = [16, 32, 64, 128, 256]
    prediction = predict_speedup_curve(iterations, cores)
    print("\npredicted speed-ups (fitted distribution):")
    print(prediction.summary())

    # 5. "Measure" the speed-up with a simulated independent multi-walk.
    measured = simulate_multiwalk_speedups(observations, cores, n_parallel_runs=50)
    print("\nmeasured (simulated multi-walk) vs predicted:")
    print(f"{'cores':>6s} {'measured':>10s} {'predicted':>10s}")
    for n in cores:
        print(f"{n:>6d} {measured.speedup(n):>10.1f} {prediction.speedup(n):>10.1f}")
    print(
        "\nnote: the simulated multi-walk cannot beat the best of the "
        f"{observations.n_runs} collected runs (speed-up ceiling "
        f"{iterations.mean() / iterations.min():.0f}x), while the fitted model "
        "extrapolates beyond it — collect more sequential runs to push the "
        "measured curve further, exactly as the paper discusses in Section 7."
    )


if __name__ == "__main__":
    main()
